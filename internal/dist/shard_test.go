package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// transports enumerates the two shard transports every cross-rank test
// runs on: the identical wire protocol must behave identically whether it
// crosses a real TCP loopback socket or the in-process channel.
var transports = []struct {
	name string
	tcp  bool
}{
	{"inproc", false},
	{"tcp", true},
}

// testCluster spins up r rank servers on the chosen transport and connects
// a coordinator to them, tearing everything down with the test.
func testCluster(t *testing.T, r int, tcp bool) *Cluster {
	t.Helper()
	n := NewNetwork()
	peers := make([]string, r)
	for i := 0; i < r; i++ {
		addr := fmt.Sprintf("inproc://test-rank%d", i)
		if tcp {
			addr = "127.0.0.1:0"
		}
		s, err := ListenRank(n, addr, ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		peers[i] = s.Addr()
	}
	cl, err := Connect(n, peers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestEstimateOverTCPMatchesPBSYM is the transport acceptance criterion:
// a sharded batch estimate crossing real TCP loopback sockets equals the
// single-process PB-SYM volume within 1e-9 for R in {1, 2, 4}.
func TestEstimateOverTCPMatchesPBSYM(t *testing.T) {
	spec := testSpec(t, 30, 1)
	pts := testPoints(2000, spec.Domain, 17)
	ref, err := core.Estimate(core.AlgPBSYM, pts, spec, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Grid.Release()
	for _, r := range []int{1, 2, 4} {
		cl := testCluster(t, r, true)
		res, err := cl.Estimate(pts, spec, Options{})
		if err != nil {
			t.Fatalf("ranks=%d: %v", r, err)
		}
		if d := maxAbsDiff(ref.Grid, res.Grid); d > 1e-9 {
			t.Errorf("ranks=%d over TCP: max abs diff vs PB-SYM = %g, want <= 1e-9", r, d)
		}
		res.Grid.Release()
	}
}

// compareShardStream asserts that a sharded window and a single-process
// updater holding the same events answer identically: same spec and live
// count, snapshot volumes within 1e-9, region masses, hotspot voxels and
// voxel reads within 1e-9 of the local sketch path.
func compareShardStream(t *testing.T, sg *StreamGroup, u *core.Updater) {
	t.Helper()
	wspec := u.Spec()
	if got := sg.Spec(); got != wspec {
		t.Fatalf("sharded spec %+v, updater %+v", got, wspec)
	}
	if sg.N() != u.N() {
		t.Fatalf("sharded N = %d, updater %d", sg.N(), u.N())
	}

	ref, err := u.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Release()
	snap, err := sg.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if d := maxAbsDiff(ref, snap); d > 1e-9 {
		t.Fatalf("sharded snapshot differs from updater by %g, want <= 1e-9", d)
	}

	b := wspec.Bounds()
	boxes := []grid.Box{
		b,
		{X0: b.X1 / 4, X1: b.X1 / 2, Y0: b.Y1 / 4, Y1: b.Y1 / 2, T0: b.T1 / 4, T1: b.T1 / 2},
		{X0: 3, X1: 3, Y0: 2, Y1: 2, T0: b.T1 / 2, T1: b.T1 / 2},
	}
	for _, box := range boxes {
		want, err := u.BoxMass(box)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sg.BoxMass(box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("box %+v: sharded mass %g, updater %g", box, got, want)
		}
	}

	const k = 8
	want, err := u.TopK(k)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sg.TopK(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded top-k has %d entries, updater %d", len(got), len(want))
	}
	for i := range want {
		if got[i].X != want[i].X || got[i].Y != want[i].Y || got[i].T != want[i].T {
			t.Fatalf("top-k[%d]: sharded voxel (%d,%d,%d), updater (%d,%d,%d)",
				i, got[i].X, got[i].Y, got[i].T, want[i].X, want[i].Y, want[i].T)
		}
		if math.Abs(got[i].V-want[i].V) > 1e-9*math.Max(1, want[i].V) {
			t.Fatalf("top-k[%d]: sharded density %g, updater %g", i, got[i].V, want[i].V)
		}
	}

	for _, vd := range want[:min(3, len(want))] {
		gv, err := sg.At(vd.X, vd.Y, vd.T)
		if err != nil {
			t.Fatal(err)
		}
		if uv := u.At(vd.X, vd.Y, vd.T); math.Abs(gv-uv) > 1e-9*math.Max(1, uv) {
			t.Fatalf("At(%d,%d,%d): sharded %g, updater %g", vd.X, vd.Y, vd.T, gv, uv)
		}
	}
}

// TestShardedStreamMatchesUpdater: a live window carved across R ranks
// answers every analytics query like the single-process sketch path — for
// R in {1, 2, 4}, over both transports, through ingest and window slides.
func TestShardedStreamMatchesUpdater(t *testing.T) {
	for _, tr := range transports {
		for _, r := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/r%d", tr.name, r), func(t *testing.T) {
				spec := testSpec(t, 20, 1)
				pts := testPoints(800, spec.Domain, 5)
				cl := testCluster(t, r, tr.tcp)
				sg, err := cl.NewStream(spec, 1)
				if err != nil {
					t.Fatal(err)
				}
				defer sg.Release()
				u, err := core.NewUpdater(spec, core.UpdaterConfig{Options: core.Options{Threads: 1}})
				if err != nil {
					t.Fatal(err)
				}
				defer u.Release()

				half := len(pts) / 2
				if err := sg.Add(pts[:half]...); err != nil {
					t.Fatal(err)
				}
				u.Add(pts[:half]...)
				compareShardStream(t, sg, u)

				// Slide the window forward past a quarter of its length,
				// expiring early events on both sides, then keep ingesting.
				to := spec.Domain.T0 + spec.Domain.GT + 5*spec.TRes
				ga, ge, err := sg.AdvanceTo(to)
				if err != nil {
					t.Fatal(err)
				}
				ua, ue := u.AdvanceTo(to)
				if ga != ua || ge != ue {
					t.Fatalf("advance: sharded (%d,%d), updater (%d,%d)", ga, ge, ua, ue)
				}
				compareShardStream(t, sg, u)

				late := make([]grid.Point, 0, len(pts)-half)
				for _, p := range pts[half:] {
					p.T += 5 * spec.TRes // inside the slid window
					late = append(late, p)
				}
				if err := sg.Add(late...); err != nil {
					t.Fatal(err)
				}
				u.Add(late...)
				compareShardStream(t, sg, u)
			})
		}
	}
}

// TestShardedStreamConcurrentIngest hammers a sharded window with
// concurrent ingests and analytics queries on both transports (the race
// detector is the main assertion), then checks the settled window still
// matches a single-process updater fed the same events.
func TestShardedStreamConcurrentIngest(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			spec := testSpec(t, 16, 1)
			pts := testPoints(600, spec.Domain, 23)
			cl := testCluster(t, 2, tr.tcp)
			sg, err := cl.NewStream(spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer sg.Release()

			stop := make(chan struct{})
			var wg sync.WaitGroup
			errc := make(chan error, 4)
			box := grid.Box{X0: 0, X1: 10, Y0: 0, Y1: 10, T0: 0, T1: 10}
			for q := 0; q < 2; q++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := sg.BoxMass(box); err != nil {
							errc <- err
							return
						}
						if _, err := sg.TopK(4); err != nil {
							errc <- err
							return
						}
					}
				}()
			}
			const batch = 50
			for off := 0; off < len(pts); off += batch {
				end := min(off+batch, len(pts))
				if err := sg.Add(pts[off:end]...); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
			select {
			case err := <-errc:
				t.Fatal(err)
			default:
			}

			u, err := core.NewUpdater(spec, core.UpdaterConfig{Options: core.Options{Threads: 1}})
			if err != nil {
				t.Fatal(err)
			}
			defer u.Release()
			u.Add(pts...)
			compareShardStream(t, sg, u)
		})
	}
}

// TestRankErrorAttribution: failures carry the rank id and protocol phase,
// both from local wrapping and across the wire from a rank-side reply.
func TestRankErrorAttribution(t *testing.T) {
	err := rankErr(3, "gather", fmt.Errorf("boom"))
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("rankErr returned %T, want *RankError", err)
	}
	if re.Rank != 3 || re.Phase != "gather" {
		t.Fatalf("RankError = %+v", re)
	}
	if got := err.Error(); got != "dist: rank 3: gather: boom" {
		t.Fatalf("Error() = %q", got)
	}
	if rankErr(1, "scatter", nil) != nil {
		t.Fatal("rankErr(nil) should pass nil through")
	}

	// A rank-side failure (unknown algorithm survives the coordinator's
	// fast-fail only if spoofed; use a closed stream id instead) comes back
	// as msgErr and is re-attributed with the server's own phase.
	cl := testCluster(t, 1, false)
	if _, err := cl.call(0, encodeIngest(999, nil), "ingest"); err == nil {
		t.Fatal("ingest into unknown stream should fail")
	} else if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("rank-side failure not attributed: %v", err)
	}
}
