package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The transport layer moves whole messages between a shard coordinator and
// its ranks. There is exactly one wire protocol (codec.go, wire.go) and two
// transports behind one interface:
//
//   - TCPTransport frames messages with a u32 length prefix over real
//     sockets — ranks in other processes or on other machines;
//   - InprocTransport hands the encoded []byte over a channel — ranks in
//     the same process skip the kernel round trip but still pay (and
//     count) the exact serialized bytes, so communication stats mean the
//     same thing on both paths.
//
// The split mirrors the gRPC proxy / in-process bridge pattern: callers
// pick a transport by address scheme (see Network) and everything above the
// Conn interface is transport-agnostic.

// Timeouts bounds the transport's blocking operations. The zero value of
// any field selects its default; explicit negative values are rejected by
// Validate so a mistyped flag cannot silently disable failure detection.
type Timeouts struct {
	// Dial bounds connection establishment (default 5s).
	Dial time.Duration
	// RPC bounds one request/response exchange with a rank, end to end
	// (default 30s). Waiting for the *next* request on an idle server
	// connection is deliberately unbounded.
	RPC time.Duration
	// Heartbeat bounds one health-probe ping exchange (default 1s) —
	// deliberately much tighter than RPC, so a dead rank is detected fast
	// without declaring a slow estimation dead.
	Heartbeat time.Duration
}

// Validate rejects negative timeouts. Zero fields are allowed and mean
// "use the default"; callers that want to reject zero too (e.g. flag
// parsing) should check before constructing the struct.
func (t Timeouts) Validate() error {
	if t.Dial < 0 {
		return fmt.Errorf("dist: dial timeout must be positive, got %v", t.Dial)
	}
	if t.RPC < 0 {
		return fmt.Errorf("dist: rpc timeout must be positive, got %v", t.RPC)
	}
	if t.Heartbeat < 0 {
		return fmt.Errorf("dist: heartbeat timeout must be positive, got %v", t.Heartbeat)
	}
	return nil
}

// withDefaults fills zero fields with the package defaults.
func (t Timeouts) withDefaults() Timeouts {
	if t.Dial == 0 {
		t.Dial = 5 * time.Second
	}
	if t.RPC == 0 {
		t.RPC = 30 * time.Second
	}
	if t.Heartbeat == 0 {
		t.Heartbeat = time.Second
	}
	return t
}

// Conn is one bidirectional message pipe. Send and Recv move whole
// messages and honor the context's deadline and cancellation; a Conn whose
// Send or Recv was interrupted mid-frame is poisoned and must be closed,
// not reused (the frame boundary is lost). Implementations are safe for
// one concurrent sender plus one concurrent receiver (the request/response
// discipline of rankConn serializes callers anyway).
type Conn interface {
	Send(ctx context.Context, msg []byte) error
	Recv(ctx context.Context) ([]byte, error)
	Close() error
}

// Listener accepts inbound rank connections.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// Transport can host rank endpoints and dial them.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// errClosed is returned by operations on a closed inproc endpoint.
var errClosed = errors.New("dist: connection closed")

// ---------------------------------------------------------------- TCP ----

// TCPTransport carries frames over real TCP sockets. The context passed to
// Send/Recv bounds each operation; waiting for the *next* frame's length
// prefix under a background context is deliberately unbounded, so idle
// connections survive and a slow estimation on the far side does not kill
// the link — but a peer that dies mid-frame fails within Timeouts.RPC
// instead of hanging forever.
type TCPTransport struct {
	// Timeouts bounds dialing and mid-frame reads. Zero fields default
	// (Dial 5s, RPC 30s, Heartbeat 1s).
	Timeouts Timeouts
}

func (t *TCPTransport) eff() Timeouts { return t.Timeouts.withDefaults() }

// Listen binds a real socket; addr ":0" picks a free port (Addr reports it).
func (t *TCPTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln, t: t}, nil
}

func (t *TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, t.eff().Dial)
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c, t: t}, nil
}

type tcpListener struct {
	ln net.Listener
	t  *TCPTransport
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c, t: l.t}, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }
func (l *tcpListener) Close() error { return l.ln.Close() }

type tcpConn struct {
	c net.Conn
	t *TCPTransport
}

// withCtx runs one socket operation under the context: the socket deadline
// mirrors the context's, and a cancellation mid-operation forces the
// socket deadline into the past, which unblocks the pending read or write.
// An interrupted operation leaves the connection poisoned (mid-frame);
// callers discard the Conn on any error, so no deadline cleanup beyond the
// next operation's reset is needed.
func (c *tcpConn) withCtx(ctx context.Context, op func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok {
		if err := c.c.SetDeadline(d); err != nil {
			return err
		}
	} else if err := c.c.SetDeadline(time.Time{}); err != nil {
		return err
	}
	stop := context.AfterFunc(ctx, func() { c.c.SetDeadline(time.Unix(1, 0)) })
	err := op()
	stop()
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

func (c *tcpConn) Send(ctx context.Context, msg []byte) error {
	return c.withCtx(ctx, func() error { return writeFrame(c.c, msg) })
}

func (c *tcpConn) Recv(ctx context.Context) ([]byte, error) {
	// The length prefix may legitimately take long to arrive (idle server
	// connection, busy peer): it waits under the caller's context alone.
	// Once the prefix arrived the rest of the frame should follow
	// promptly, so the payload read is additionally bounded by the RPC
	// timeout even when the context has no deadline.
	var hdr [frameHeaderBytes]byte
	if err := c.withCtx(ctx, func() error {
		_, err := io.ReadFull(c.c, hdr[:])
		return err
	}); err != nil {
		return nil, err
	}
	n := le.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("dist: empty frame")
	}
	if n > maxFrameBytes {
		return nil, fmt.Errorf("dist: frame prefix announces %d bytes, limit is %d", n, maxFrameBytes)
	}
	pctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, c.t.eff().RPC)
		defer cancel()
	}
	msg := make([]byte, n)
	if err := c.withCtx(pctx, func() error {
		_, err := io.ReadFull(c.c, msg)
		return err
	}); err != nil {
		return nil, err
	}
	return msg, nil
}

func (c *tcpConn) Close() error { return c.c.Close() }

// ------------------------------------------------------------- inproc ----

// InprocTransport connects ranks living in the same process: Send passes
// the encoded message through a channel with zero copies. Encoders allocate
// a fresh buffer per message and never reuse it after Send, which is what
// makes the hand-off safe.
type InprocTransport struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

func NewInprocTransport() *InprocTransport {
	return &InprocTransport{listeners: make(map[string]*inprocListener)}
}

func (t *InprocTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("dist: inproc address %q already bound", addr)
	}
	l := &inprocListener{t: t, addr: addr, accept: make(chan *inprocConn), done: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

func (t *InprocTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("dist: no inproc listener at %q", addr)
	}
	a, b := inprocPipe()
	select {
	case l.accept <- b:
		return a, nil
	case <-l.done:
		return nil, fmt.Errorf("dist: inproc listener at %q closed", addr)
	}
}

type inprocListener struct {
	t      *InprocTransport
	addr   string
	accept chan *inprocConn
	done   chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, errClosed
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

// inprocPipe builds two connected endpoints. Each direction is a small
// buffered channel: the request/response discipline keeps at most one
// message in flight per direction, the buffer just decouples Send from the
// peer's Recv scheduling.
func inprocPipe() (a, b *inprocConn) {
	ab := make(chan []byte, 4)
	ba := make(chan []byte, 4)
	done := make(chan struct{})
	var once sync.Once
	a = &inprocConn{out: ab, in: ba, done: done, once: &once}
	b = &inprocConn{out: ba, in: ab, done: done, once: &once}
	return a, b
}

type inprocConn struct {
	out  chan []byte
	in   chan []byte
	done chan struct{}
	once *sync.Once
}

func (c *inprocConn) Send(ctx context.Context, msg []byte) error {
	select {
	case c.out <- msg:
		return nil
	case <-c.done:
		return errClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *inprocConn) Recv(ctx context.Context) ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		// Drain anything handed over before the close raced in.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, errClosed
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// ------------------------------------------------------------ network ----

// Network bundles the two transports behind address-scheme dispatch:
// "inproc://name" stays in-process, anything else is a TCP host:port. One
// Network per process is typical; inproc names are scoped to it. Network
// itself satisfies Transport, so it can be wrapped (see Chaos).
type Network struct {
	TCP    TCPTransport
	inproc *InprocTransport
}

func NewNetwork() *Network {
	return &Network{inproc: NewInprocTransport()}
}

const inprocScheme = "inproc://"

func (n *Network) transport(addr string) (Transport, string) {
	if name, ok := strings.CutPrefix(addr, inprocScheme); ok {
		return n.inproc, name
	}
	return &n.TCP, addr
}

// Listen hosts a rank endpoint at addr, picking the transport by scheme.
func (n *Network) Listen(addr string) (Listener, error) {
	t, a := n.transport(addr)
	ln, err := t.Listen(a)
	if err != nil {
		return nil, err
	}
	if t == n.inproc {
		return prefixedListener{ln}, nil
	}
	return ln, nil
}

// Dial connects to a rank endpoint, picking the transport by scheme.
func (n *Network) Dial(addr string) (Conn, error) {
	t, a := n.transport(addr)
	return t.Dial(a)
}

// prefixedListener re-attaches the inproc:// scheme to Addr so a dial of
// the reported address round-trips through the scheme dispatch.
type prefixedListener struct{ Listener }

func (l prefixedListener) Addr() string { return inprocScheme + l.Listener.Addr() }

// ----------------------------------------------------------- counting ----

// countingConn measures the bytes a connection moves, including the frame
// prefix, so TCP and inproc report identical numbers for identical message
// sequences. The counters live in the owning rankConn (as pointers here),
// so byte totals accumulate across reconnects. Counters are atomics:
// metrics endpoints read them while calls are in flight.
type countingConn struct {
	c          Conn
	sent, recv *atomic.Int64
}

func (c *countingConn) Send(ctx context.Context, msg []byte) error {
	if err := c.c.Send(ctx, msg); err != nil {
		return err
	}
	c.sent.Add(int64(len(msg)) + frameHeaderBytes)
	return nil
}

func (c *countingConn) Recv(ctx context.Context) ([]byte, error) {
	msg, err := c.c.Recv(ctx)
	if err != nil {
		return nil, err
	}
	c.recv.Add(int64(len(msg)) + frameHeaderBytes)
	return msg, nil
}

func (c *countingConn) Close() error { return c.c.Close() }
