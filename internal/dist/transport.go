package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The transport layer moves whole messages between a shard coordinator and
// its ranks. There is exactly one wire protocol (codec.go, wire.go) and two
// transports behind one interface:
//
//   - TCPTransport frames messages with a u32 length prefix over real
//     sockets — ranks in other processes or on other machines;
//   - InprocTransport hands the encoded []byte over a channel — ranks in
//     the same process skip the kernel round trip but still pay (and
//     count) the exact serialized bytes, so communication stats mean the
//     same thing on both paths.
//
// The split mirrors the gRPC proxy / in-process bridge pattern: callers
// pick a transport by address scheme (see Network) and everything above the
// Conn interface is transport-agnostic.

// Conn is one bidirectional message pipe. Send and Recv move whole
// messages; implementations are safe for one concurrent sender plus one
// concurrent receiver (the request/response discipline of rankConn
// serializes callers anyway).
type Conn interface {
	Send(msg []byte) error
	Recv() ([]byte, error)
	Close() error
}

// Listener accepts inbound rank connections.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// Transport can host rank endpoints and dial them.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// errClosed is returned by operations on a closed inproc endpoint.
var errClosed = errors.New("dist: connection closed")

// ---------------------------------------------------------------- TCP ----

// TCPTransport carries frames over real TCP sockets. Timeout bounds every
// write and every payload read; waiting for the *next* frame's length
// prefix is deliberately unbounded, so idle connections survive and a slow
// estimation on the far side does not kill the link — but a peer that dies
// mid-frame fails within Timeout instead of hanging forever.
type TCPTransport struct {
	// Timeout is the per-operation deadline (default 30s).
	Timeout time.Duration
}

func (t *TCPTransport) timeout() time.Duration {
	if t.Timeout > 0 {
		return t.Timeout
	}
	return 30 * time.Second
}

// Listen binds a real socket; addr ":0" picks a free port (Addr reports it).
func (t *TCPTransport) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln, t: t}, nil
}

func (t *TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, t.timeout())
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c, t: t}, nil
}

type tcpListener struct {
	ln net.Listener
	t  *TCPTransport
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c, t: l.t}, nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }
func (l *tcpListener) Close() error { return l.ln.Close() }

type tcpConn struct {
	c net.Conn
	t *TCPTransport
}

func (c *tcpConn) Send(msg []byte) error {
	if err := c.c.SetWriteDeadline(time.Now().Add(c.t.timeout())); err != nil {
		return err
	}
	return writeFrame(c.c, msg)
}

func (c *tcpConn) Recv() ([]byte, error) {
	// Block without a deadline for the length prefix (an idle or busy peer
	// is fine), then bound the payload read: once the prefix arrived the
	// rest of the frame should follow promptly.
	if err := c.c.SetReadDeadline(time.Time{}); err != nil {
		return nil, err
	}
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(c.c, hdr[:]); err != nil {
		return nil, err
	}
	n := le.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("dist: empty frame")
	}
	if n > maxFrameBytes {
		return nil, fmt.Errorf("dist: frame prefix announces %d bytes, limit is %d", n, maxFrameBytes)
	}
	if err := c.c.SetReadDeadline(time.Now().Add(c.t.timeout())); err != nil {
		return nil, err
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(c.c, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

func (c *tcpConn) Close() error { return c.c.Close() }

// ------------------------------------------------------------- inproc ----

// InprocTransport connects ranks living in the same process: Send passes
// the encoded message through a channel with zero copies. Encoders allocate
// a fresh buffer per message and never reuse it after Send, which is what
// makes the hand-off safe.
type InprocTransport struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

func NewInprocTransport() *InprocTransport {
	return &InprocTransport{listeners: make(map[string]*inprocListener)}
}

func (t *InprocTransport) Listen(addr string) (Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("dist: inproc address %q already bound", addr)
	}
	l := &inprocListener{t: t, addr: addr, accept: make(chan *inprocConn), done: make(chan struct{})}
	t.listeners[addr] = l
	return l, nil
}

func (t *InprocTransport) Dial(addr string) (Conn, error) {
	t.mu.Lock()
	l := t.listeners[addr]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("dist: no inproc listener at %q", addr)
	}
	a, b := inprocPipe()
	select {
	case l.accept <- b:
		return a, nil
	case <-l.done:
		return nil, fmt.Errorf("dist: inproc listener at %q closed", addr)
	}
}

type inprocListener struct {
	t      *InprocTransport
	addr   string
	accept chan *inprocConn
	done   chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, errClosed
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		delete(l.t.listeners, l.addr)
		l.t.mu.Unlock()
	})
	return nil
}

// inprocPipe builds two connected endpoints. Each direction is a small
// buffered channel: the request/response discipline keeps at most one
// message in flight per direction, the buffer just decouples Send from the
// peer's Recv scheduling.
func inprocPipe() (a, b *inprocConn) {
	ab := make(chan []byte, 4)
	ba := make(chan []byte, 4)
	done := make(chan struct{})
	var once sync.Once
	a = &inprocConn{out: ab, in: ba, done: done, once: &once}
	b = &inprocConn{out: ba, in: ab, done: done, once: &once}
	return a, b
}

type inprocConn struct {
	out  chan []byte
	in   chan []byte
	done chan struct{}
	once *sync.Once
}

func (c *inprocConn) Send(msg []byte) error {
	select {
	case c.out <- msg:
		return nil
	case <-c.done:
		return errClosed
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		// Drain anything handed over before the close raced in.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, errClosed
		}
	}
}

func (c *inprocConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// ------------------------------------------------------------ network ----

// Network bundles the two transports behind address-scheme dispatch:
// "inproc://name" stays in-process, anything else is a TCP host:port. One
// Network per process is typical; inproc names are scoped to it.
type Network struct {
	TCP    TCPTransport
	inproc *InprocTransport
}

func NewNetwork() *Network {
	return &Network{inproc: NewInprocTransport()}
}

const inprocScheme = "inproc://"

func (n *Network) transport(addr string) (Transport, string) {
	if name, ok := strings.CutPrefix(addr, inprocScheme); ok {
		return n.inproc, name
	}
	return &n.TCP, addr
}

// Listen hosts a rank endpoint at addr, picking the transport by scheme.
func (n *Network) Listen(addr string) (Listener, error) {
	t, a := n.transport(addr)
	ln, err := t.Listen(a)
	if err != nil {
		return nil, err
	}
	if t == n.inproc {
		return prefixedListener{ln}, nil
	}
	return ln, nil
}

// Dial connects to a rank endpoint, picking the transport by scheme.
func (n *Network) Dial(addr string) (Conn, error) {
	t, a := n.transport(addr)
	return t.Dial(a)
}

// prefixedListener re-attaches the inproc:// scheme to Addr so a dial of
// the reported address round-trips through the scheme dispatch.
type prefixedListener struct{ Listener }

func (l prefixedListener) Addr() string { return inprocScheme + l.Listener.Addr() }

// ----------------------------------------------------------- counting ----

// countingConn measures the bytes a connection moves, including the frame
// prefix, so TCP and inproc report identical numbers for identical message
// sequences. Counters are atomics: metrics endpoints read them while calls
// are in flight.
type countingConn struct {
	c          Conn
	sent, recv atomic.Int64
}

func (c *countingConn) Send(msg []byte) error {
	if err := c.c.Send(msg); err != nil {
		return err
	}
	c.sent.Add(int64(len(msg)) + frameHeaderBytes)
	return nil
}

func (c *countingConn) Recv() ([]byte, error) {
	msg, err := c.c.Recv()
	if err != nil {
		return nil, err
	}
	c.recv.Add(int64(len(msg)) + frameHeaderBytes)
	return msg, nil
}

func (c *countingConn) Close() error { return c.c.Close() }
