package dist

import (
	"errors"
	"fmt"
)

// RankError attributes a distributed failure to the rank and protocol phase
// it happened in, so a multi-rank failure is diagnosable from the error
// alone. Unwrap exposes the cause for errors.Is/As (a rank-local
// grid.ErrMemoryBudget stays recognizable on the in-process transport; over
// TCP the cause crosses the wire as text and is wrapped in a plain error).
type RankError struct {
	Rank  int    // rank index in [0, Ranks)
	Phase string // protocol phase: dial, scatter, estimate, gather, create, ingest, advance, query, snapshot, close, ping
	Err   error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("dist: rank %d: %s: %v", e.Rank, e.Phase, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// rankErr wraps err with rank and phase attribution; nil stays nil.
func rankErr(rank int, phase string, err error) error {
	if err == nil {
		return nil
	}
	return &RankError{Rank: rank, Phase: phase, Err: err}
}

// ErrRankDown marks an operation refused because the target rank is not
// currently healthy (down, suspect, or awaiting this stream's re-seed).
// It is always wrapped in a RankError attributing the rank; test with
// errors.Is.
var ErrRankDown = errors.New("dist: rank down")

// Coverage reports how much of a sharded window contributed to an answer:
// Live of Total slab ranks. Full coverage (Live == Total) means the
// answer is exact; anything less is a principled partial estimate — the
// merged density of the live slabs only.
type Coverage struct {
	Live  int `json:"live"`
	Total int `json:"total"`
}

// Fraction returns Live/Total (1 for an unsharded or empty topology).
func (c Coverage) Fraction() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Live) / float64(c.Total)
}

// Degraded reports whether any slab rank was missing from the answer.
func (c Coverage) Degraded() bool { return c.Live < c.Total }

// DegradedError reports a mutation that committed on the coordinator and
// every healthy rank but could not reach at least one failed rank. The
// coordinator's state (live list, mutation log, journal) is authoritative
// and the failed rank will be rebuilt from it on reconnect, so callers
// that tolerate temporary partial coverage may treat this as success;
// Unwrap exposes the attributed RankError of the first failed rank.
type DegradedError struct {
	Coverage Coverage
	Err      error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("dist: degraded (%d/%d ranks): %v", e.Coverage.Live, e.Coverage.Total, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// transportError marks a failure of the transport itself (send, receive,
// framing, cancellation) as opposed to a rank-side application error
// carried in a well-formed msgErr reply. Transport failures sever the
// connection and are retryable; rank-side errors are not.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// isTransportErr reports whether err (possibly wrapped in a RankError)
// originated in the transport layer.
func isTransportErr(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// GatherPolicy selects how sharded analytics behave when a rank is down.
type GatherPolicy int

const (
	// GatherPartial (default) merges the live ranks' sketches and reports
	// the reduced coverage alongside the answer.
	GatherPartial GatherPolicy = iota
	// GatherFailFast refuses degraded answers: any down rank fails the
	// query with its attributed RankError.
	GatherFailFast
)

func (p GatherPolicy) String() string {
	switch p {
	case GatherFailFast:
		return "failfast"
	default:
		return "partial"
	}
}

// ParseGatherPolicy parses "partial" or "failfast".
func ParseGatherPolicy(s string) (GatherPolicy, error) {
	switch s {
	case "", "partial":
		return GatherPartial, nil
	case "failfast":
		return GatherFailFast, nil
	default:
		return 0, fmt.Errorf("dist: unknown gather policy %q (want partial or failfast)", s)
	}
}
