package dist

import "fmt"

// RankError attributes a distributed failure to the rank and protocol phase
// it happened in, so a multi-rank failure is diagnosable from the error
// alone. Unwrap exposes the cause for errors.Is/As (a rank-local
// grid.ErrMemoryBudget stays recognizable on the in-process transport; over
// TCP the cause crosses the wire as text and is wrapped in a plain error).
type RankError struct {
	Rank  int    // rank index in [0, Ranks)
	Phase string // protocol phase: dial, scatter, estimate, gather, create, ingest, advance, query, snapshot, close
	Err   error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("dist: rank %d: %s: %v", e.Rank, e.Phase, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// rankErr wraps err with rank and phase attribution; nil stays nil.
func rankErr(rank int, phase string, err error) error {
	if err == nil {
		return nil
	}
	return &RankError{Rank: rank, Phase: phase, Err: err}
}
