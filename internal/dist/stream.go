package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/grid"
	"repro/internal/par"
)

// StreamGroup is a live sliding window sharded across the cluster's ranks
// by temporal slab carving: rank i hosts a core.Updater on slab i's
// sub-spec and receives exactly the events whose temporal influence reaches
// its slab (owner + halo, the batch estimator's replication rule applied to
// a stream). The coordinator keeps the authoritative live list — every
// ingested event, with a bitmask of the ranks it has been replicated to —
// because the global normalization count n and the halo top-up on window
// advances both need it.
//
// Analytics never gather grids. Region mass and single-voxel reads merge
// O(1) raw partial sums from the ranks' incremental sketches; hotspots
// merge O(k) candidate lists scaled rank-side by the *global* 1/n, which
// keeps every candidate density bitwise identical to a single-process scan
// and therefore preserves the selection's index tie-breaks (grid.MergeTopK).
// Snapshot is the one O(G) operation left, retained as the baseline the
// "shard" benchmark compares the sketch gather against.
//
// Window advances broadcast one layer count k to every rank, so all slab
// windows stay in the same frame forever. An event newly entering a rank's
// halo (it was wholly ahead of that slab before the advance) is shipped
// with the advance message; its influence was disjoint from the slab's old
// window, so adding it cannot double-count on surviving layers.
//
// Fault tolerance: the coordinator is authoritative. Mutations commit on
// the coordinator (mutation log + live list + frame offset) whether or not
// every rank acknowledged; a rank that missed mutations is excluded from
// gathers (reduced Coverage under GatherPartial, an error under
// GatherFailFast) until heal re-seeds it by replaying the full mutation
// log through the same router the live path uses — so the rebuilt replica
// receives the byte-identical message sequence an uninterrupted run would
// have sent it, and its Updater state (compaction schedule included) is
// bitwise equal. The full log is retained for the stream's lifetime; for
// long-lived windows the upstream WAL (internal/serve journaling) is the
// durable copy and this in-memory log is the replay fast path.
//
// StreamGroup is safe for concurrent use: a single mutex orders mutations
// and queries exactly like the single-process Updater's.
type StreamGroup struct {
	mu       sync.Mutex
	c        *Cluster
	id       uint64
	threads  int
	base     grid.Spec // creation-time spec, the replay starting frame
	rt       router    // live routing state (current spec, live list)
	ops      []streamOp
	seeded   []int64 // per-rank connection epoch the replica was seeded on
	rebuilds []int64 // last reported per-rank sketch rebuild counters
	released bool
}

// streamOp is one logged mutation, sufficient to re-derive every rank's
// message sequence deterministically.
type streamOp struct {
	pts     []grid.Point // ingest batch (advance == false)
	t       float64      // AdvanceTo target (advance == true)
	advance bool
}

// liveEvent is one ingested event plus its rank-replication mask.
type liveEvent struct {
	p    grid.Point
	mask uint64
}

// maxStreamRanks bounds the replication bitmask width.
const maxStreamRanks = 64

// router is the deterministic event-routing state machine shared by the
// live path and re-seed replay: same spec frame, same live list, same
// float expressions, so a replay derives the byte-identical per-rank
// batches the live path produced.
type router struct {
	spec  grid.Spec   // window spec; OT advances with the window
	slabs []grid.Slab // carved once; T0/T1 are window-relative layers
	live  []liveEvent
}

// layerOf returns the window-relative temporal layer of t as a float (no
// clamping, no int conversion — comparisons against slab bounds stay exact
// and overflow-free for any input).
func (rt *router) layerOf(t float64) float64 {
	return math.Floor((t-rt.spec.Domain.T0)/rt.spec.TRes) - float64(rt.spec.OT)
}

// needs reports whether an event at window-relative layer tl (float; may be
// NaN for absurd inputs, which fails both comparisons) can influence slab sl.
func needs(sl grid.Slab, tl float64, ht int) bool {
	return tl >= float64(sl.T0-ht) && tl <= float64(sl.T1+ht)
}

// ingest routes pts into the live list and returns the per-slab batches.
func (rt *router) ingest(pts []grid.Point) [][]grid.Point {
	batches := make([][]grid.Point, len(rt.slabs))
	for _, p := range pts {
		tl := rt.layerOf(p.T)
		var mask uint64
		for i, sl := range rt.slabs {
			if needs(sl, tl, rt.spec.Ht) {
				mask |= 1 << uint(i)
				batches[i] = append(batches[i], p)
			}
		}
		rt.live = append(rt.live, liveEvent{p: p, mask: mask})
	}
	return batches
}

// advanceTo slides the window so the last layer covers time t, expiring
// events exactly like the single-process Updater (same float expressions,
// same order) and computing each slab's halo top-up. k == 0 means no-op.
func (rt *router) advanceTo(t float64) (k, expired int, batches [][]grid.Point) {
	sp := rt.spec
	rel := math.Floor((t - sp.Domain.T0) / sp.TRes)
	// Same conversion guard as core.Updater.AdvanceTo: NaN and out-of-range
	// targets must no-op, not corrupt the frame offset.
	if !(rel > -(1<<52) && rel < 1<<52) {
		return 0, 0, nil
	}
	k = int(rel) - (sp.OT + sp.Gt - 1)
	if k <= 0 {
		return 0, 0, nil
	}
	rt.spec.OT += k
	sp = rt.spec
	// Expire exactly like the single-process window: an event whose support
	// ends strictly before the first layer's center is inert everywhere.
	firstCenter := sp.CenterT(0)
	kept := rt.live[:0]
	for _, ev := range rt.live {
		if ev.p.T+sp.HT < firstCenter {
			expired++
			continue
		}
		kept = append(kept, ev)
	}
	rt.live = kept
	// Halo top-up: events that newly reach a slab (their influence was
	// disjoint from that slab's old window, so the rank-side Add cannot
	// double-count on surviving layers).
	batches = make([][]grid.Point, len(rt.slabs))
	for idx := range rt.live {
		tl := rt.layerOf(rt.live[idx].p.T)
		for i, sl := range rt.slabs {
			bit := uint64(1) << uint(i)
			if rt.live[idx].mask&bit != 0 {
				continue
			}
			if needs(sl, tl, sp.Ht) {
				rt.live[idx].mask |= bit
				batches[i] = append(batches[i], rt.live[idx].p)
			}
		}
	}
	return k, expired, batches
}

// NewStream creates a sharded live window over the cluster: the window
// spec's time axis is carved into one slab per connected rank (clamped to
// the layer count and the bitmask width) and each rank builds an empty
// slab Updater with the given thread count. Creation requires every
// participating rank healthy; an established stream then survives rank
// failures (see the fault-tolerance notes on StreamGroup).
func (c *Cluster) NewStream(spec grid.Spec, threads int) (*StreamGroup, error) {
	ranks := c.Ranks()
	if ranks > maxStreamRanks {
		ranks = maxStreamRanks
	}
	slabs := spec.CarveT(ranks)
	if threads < 1 {
		threads = 1
	}
	g := &StreamGroup{
		c:        c,
		id:       c.nextStream.Add(1),
		threads:  threads,
		base:     spec,
		rt:       router{spec: spec, slabs: slabs},
		seeded:   make([]int64, len(slabs)),
		rebuilds: make([]int64, len(slabs)),
	}
	for i := range g.seeded {
		g.seeded[i] = c.connEpoch(i)
	}
	errs := make([]error, len(slabs))
	par.For(len(slabs), len(slabs), func(i int) {
		reply, err := c.call(i, encodeStreamCreate(g.id, threads, slabs[i].Spec), "create")
		if err == nil {
			_, _, err = decodeOK(reply)
			err = rankErr(i, "create", err)
		}
		errs[i] = err
	})
	for _, err := range errs {
		if err != nil {
			g.closeRanks()
			return nil, err
		}
	}
	c.registerReseeder(g.id, g.reseed)
	return g, nil
}

// closeRanks best-effort closes the rank-side stream state.
func (g *StreamGroup) closeRanks() {
	par.For(len(g.rt.slabs), len(g.rt.slabs), func(i int) {
		if reply, err := g.c.streamCall(i, encodeStreamClose(g.id), "close"); err == nil {
			decodeOK(reply)
		}
	})
}

// rankSeeded reports whether rank i is healthy and holds this stream's
// current replica: the cluster says up, and the replica was seeded on the
// connection that is live right now (an older epoch means the replica died
// with its connection and the rank must sit out until re-seeded).
func (g *StreamGroup) rankSeeded(i int) bool {
	return g.c.rankUp(i) && g.seeded[i] == g.c.connEpoch(i)
}

// coverage counts the ranks currently contributing to this stream.
func (g *StreamGroup) coverage() Coverage {
	live := 0
	for i := range g.rt.slabs {
		if g.rankSeeded(i) {
			live++
		}
	}
	return Coverage{Live: live, Total: len(g.rt.slabs)}
}

// Coverage reports how many of the stream's slab ranks are live and
// seeded right now.
func (g *StreamGroup) Coverage() Coverage {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coverage()
}

// degraded folds a fan-out's per-rank errors into the mutation contract:
// nil when every rank acknowledged, otherwise a DegradedError wrapping the
// first failure — the coordinator state committed regardless, and failed
// ranks rebuild from the log on reconnect.
func (g *StreamGroup) degraded(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return &DegradedError{Coverage: g.coverage(), Err: err}
		}
	}
	return nil
}

// Add ingests events: each is routed to every rank whose slab its temporal
// influence reaches (possibly none, for events far ahead of the window —
// they still count toward n and are shipped later by AdvanceTo when their
// halo arrives) and appended to the coordinator's live list and mutation
// log. A rank failure yields a DegradedError; the coordinator state is
// committed either way.
func (g *StreamGroup) Add(pts ...grid.Point) error {
	if len(pts) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return errors.New("dist: stream released")
	}
	// The log owns its copy: callers may reuse their slice, and replay
	// must see exactly what was routed.
	cp := append([]grid.Point(nil), pts...)
	g.ops = append(g.ops, streamOp{pts: cp})
	batches := g.rt.ingest(cp)
	errs := g.fanOut("ingest", func(i int) ([]byte, bool) {
		if len(batches[i]) == 0 {
			return nil, false
		}
		return encodeIngest(g.id, batches[i]), true
	}, nil)
	return g.degraded(errs)
}

// AdvanceTo slides every rank's window forward so the last layer covers
// time t, expiring events exactly like the single-process Updater (same
// float expressions, same order) and topping up each rank's halo with the
// events that newly reach its slab. It returns the layers advanced and the
// events expired; a rank failure yields a DegradedError with the counts
// still valid (the coordinator's frame advanced).
func (g *StreamGroup) AdvanceTo(t float64) (advanced, expired int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return 0, 0, errors.New("dist: stream released")
	}
	k, expired, batches := g.rt.advanceTo(t)
	if k <= 0 {
		return 0, 0, nil
	}
	// Logged only when effective: replay recomputes the same k from the
	// same frame, so no-op advances would only bloat the log.
	g.ops = append(g.ops, streamOp{t: t, advance: true})
	errs := g.fanOut("advance", func(i int) ([]byte, bool) {
		return encodeAdvance(g.id, k, batches[i]), true
	}, nil)
	return k, expired, g.degraded(errs)
}

// fanOut builds and sends one request per rank (skipping ranks where build
// returns false), decodes msgOK acknowledgements, and returns the per-rank
// error slice. Ranks that are down or hold a stale replica fail fast with
// ErrRankDown instead of touching the transport.
func (g *StreamGroup) fanOut(phase string, build func(i int) ([]byte, bool), onReply func(i int, a, b int64)) []error {
	errs := make([]error, len(g.rt.slabs))
	par.For(len(g.rt.slabs), len(g.rt.slabs), func(i int) {
		req, ok := build(i)
		if !ok {
			return
		}
		if !g.rankSeeded(i) {
			errs[i] = rankErr(i, phase, ErrRankDown)
			return
		}
		reply, err := g.c.streamCall(i, req, phase)
		if err != nil {
			errs[i] = err
			return
		}
		a, b, err := decodeOK(reply)
		if err != nil {
			errs[i] = rankErr(i, phase, err)
			return
		}
		if onReply != nil {
			onReply(i, a, b)
		}
	})
	return errs
}

// reseed rebuilds rank r's slab replica after a reconnect: it replays the
// stream's full mutation log through a fresh router seeded with the
// creation-time spec, sending the rank exactly the create/ingest/advance
// sequence an uninterrupted run would have sent it — so the rebuilt
// Updater state, compaction schedule included, is bitwise equal. Runs
// under the stream mutex: concurrent mutations order strictly before or
// after the replay and stay consistent either way.
func (g *StreamGroup) reseed(rank int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released || rank >= len(g.rt.slabs) {
		return nil
	}
	epoch := g.c.connEpoch(rank)
	send := func(req []byte, phase string) error {
		reply, err := g.c.streamCall(rank, req, phase)
		if err != nil {
			return err
		}
		if _, _, err := decodeOK(reply); err != nil {
			return rankErr(rank, phase, err)
		}
		return nil
	}
	// Drop any stale replica first (idempotent — a fresh connection has
	// none, but a heal retried after a partial replay might).
	if err := send(encodeStreamClose(g.id), "close"); err != nil {
		return err
	}
	if err := send(encodeStreamCreate(g.id, g.threads, g.rt.slabs[rank].Spec), "create"); err != nil {
		return err
	}
	sim := router{spec: g.base, slabs: g.rt.slabs}
	for _, op := range g.ops {
		if op.advance {
			k, _, batches := sim.advanceTo(op.t)
			if k <= 0 {
				continue
			}
			if err := send(encodeAdvance(g.id, k, batches[rank]), "advance"); err != nil {
				return err
			}
		} else {
			batches := sim.ingest(op.pts)
			if len(batches[rank]) > 0 {
				if err := send(encodeIngest(g.id, batches[rank]), "ingest"); err != nil {
					return err
				}
			}
		}
	}
	g.seeded[rank] = epoch
	return nil
}

// Spec returns the current window spec (OT reflects every advance).
func (g *StreamGroup) Spec() grid.Spec {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rt.spec
}

// Window returns the continuous time range [t0, t1) the window covers.
func (g *StreamGroup) Window() (t0, t1 float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sp := g.rt.spec
	t0 = sp.Domain.T0 + float64(sp.OT)*sp.TRes
	return t0, t0 + float64(sp.Gt)*sp.TRes
}

// N returns the number of live events in the window.
func (g *StreamGroup) N() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.rt.live)
}

// Live returns a copy of the live events in ingest order.
func (g *StreamGroup) Live() []grid.Point {
	g.mu.Lock()
	defer g.mu.Unlock()
	pts := make([]grid.Point, len(g.rt.live))
	for i, ev := range g.rt.live {
		pts[i] = ev.p
	}
	return pts
}

// At returns the normalized density at window voxel (X, Y, T): a one-voxel
// raw region read from the owning rank (the sketch's boundary scan returns
// the exact raw voxel), normalized by the global live count. A voxel owned
// by a down rank fails fast with an attributed RankError wrapping
// ErrRankDown — unlike box and top-k gathers there is no partial answer
// for a single voxel.
func (g *StreamGroup) At(X, Y, T int) (float64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return 0, errors.New("dist: stream released")
	}
	n := len(g.rt.live)
	if n == 0 {
		return 0, nil
	}
	for i, sl := range g.rt.slabs {
		if T >= sl.T0 && T <= sl.T1 {
			if !g.rankSeeded(i) {
				return 0, rankErr(i, "query", ErrRankDown)
			}
			b := grid.Box{X0: X, X1: X, Y0: Y, Y1: Y, T0: T - sl.T0, T1: T - sl.T0}
			reply, err := g.c.streamCall(i, encodeRegion(g.id, b), "query")
			if err != nil {
				return 0, err
			}
			v, rb, err := decodeSum(reply)
			if err != nil {
				return 0, rankErr(i, "query", err)
			}
			g.rebuilds[i] = rb
			return v / float64(n), nil
		}
	}
	return 0, fmt.Errorf("dist: voxel layer %d outside the window", T)
}

// gatherCoverage counts the ranks that actually stood behind a gather:
// seeded, healthy, and error-free this round.
func (g *StreamGroup) gatherCoverage(errs []error) Coverage {
	live := 0
	for i := range g.rt.slabs {
		if errs[i] == nil && g.rankSeeded(i) {
			live++
		}
	}
	return Coverage{Live: live, Total: len(g.rt.slabs)}
}

// gatherPolicyErr returns the error a degraded gather must surface under
// GatherFailFast: the first per-rank failure, or an ErrRankDown for the
// first unseeded rank when no call even went out.
func (g *StreamGroup) gatherPolicyErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range g.rt.slabs {
		if !g.rankSeeded(i) {
			return rankErr(i, "query", ErrRankDown)
		}
	}
	return nil
}

// BoxMass integrates the normalized window density over a logical voxel
// box; see BoxMassCov. Degradation handling follows the cluster's gather
// policy: under GatherPartial a reduced-coverage answer returns nil error.
func (g *StreamGroup) BoxMass(b grid.Box) (float64, error) {
	v, _, err := g.BoxMassCov(b)
	return v, err
}

// BoxMassCov integrates the normalized window density over a logical voxel
// box: each overlapping live rank answers the raw partial sum of its
// slab's share from its incremental sketch, and the partials are combined
// in rank order (deterministic summation) before the single global
// normalization. The returned Coverage counts the ranks that contributed
// (or stood ready outside the box); under GatherPartial a down rank only
// shrinks coverage, under GatherFailFast it fails the query.
func (g *StreamGroup) BoxMassCov(b grid.Box) (float64, Coverage, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return 0, Coverage{}, errors.New("dist: stream released")
	}
	cov := g.coverage()
	n := len(g.rt.live)
	if n == 0 {
		return 0, cov, nil
	}
	sp := g.rt.spec
	b = b.Clip(sp.Bounds())
	if b.Empty() {
		return 0, cov, nil
	}
	slabs := g.rt.slabs
	sums := make([]float64, len(slabs))
	hits := make([]bool, len(slabs))
	errs := make([]error, len(slabs))
	par.For(len(slabs), len(slabs), func(i int) {
		sl := slabs[i]
		t0, t1 := b.T0, b.T1
		if t0 < sl.T0 {
			t0 = sl.T0
		}
		if t1 > sl.T1 {
			t1 = sl.T1
		}
		if t0 > t1 {
			return // no overlap; the rank still counts toward coverage
		}
		if !g.rankSeeded(i) {
			errs[i] = rankErr(i, "query", ErrRankDown)
			return
		}
		lb := grid.Box{X0: b.X0, X1: b.X1, Y0: b.Y0, Y1: b.Y1, T0: t0 - sl.T0, T1: t1 - sl.T0}
		reply, err := g.c.streamCall(i, encodeRegion(g.id, lb), "query")
		if err != nil {
			errs[i] = err
			return
		}
		v, rb, err := decodeSum(reply)
		if err != nil {
			errs[i] = rankErr(i, "query", err)
			return
		}
		sums[i], hits[i] = v, true
		g.rebuilds[i] = rb
	})
	cov = g.gatherCoverage(errs)
	if g.c.policy == GatherFailFast {
		if err := g.gatherPolicyErr(errs); err != nil {
			return 0, cov, err
		}
	}
	total := 0.0
	for i, v := range sums {
		if hits[i] {
			total += v
		}
	}
	return total / float64(n) * sp.SRes * sp.SRes * sp.TRes, cov, nil
}

// TopK returns the k highest-density voxels of the merged window; see
// TopKCov. Degradation handling follows the cluster's gather policy.
func (g *StreamGroup) TopK(k int) ([]grid.VoxelDensity, error) {
	cands, _, err := g.TopKCov(k)
	return cands, err
}

// TopKCov returns the k highest-density voxels of the merged window plus
// the coverage that produced them. Every live rank selects its own k best
// with the global 1/n scale (so candidate values are bitwise the
// single-process scan's), candidates shift into the window frame, and
// MergeTopK re-selects under the same total order — every window voxel is
// owned by exactly one rank, so the global top-k is a subset of the union
// of the per-rank lists. A down rank's voxels are simply absent under
// GatherPartial (coverage says so); GatherFailFast fails instead.
func (g *StreamGroup) TopKCov(k int) ([]grid.VoxelDensity, Coverage, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return nil, Coverage{}, errors.New("dist: stream released")
	}
	cov := g.coverage()
	if k <= 0 {
		return nil, cov, nil
	}
	scale := 0.0 // an empty window is exactly zero, like Snapshot
	if n := len(g.rt.live); n > 0 {
		scale = 1 / float64(n)
	}
	slabs := g.rt.slabs
	lists := make([][]grid.VoxelDensity, len(slabs))
	errs := make([]error, len(slabs))
	par.For(len(slabs), len(slabs), func(i int) {
		if !g.rankSeeded(i) {
			errs[i] = rankErr(i, "query", ErrRankDown)
			return
		}
		reply, err := g.c.streamCall(i, encodeTopK(g.id, k, scale), "query")
		if err != nil {
			errs[i] = err
			return
		}
		rb, cands, err := decodeTopKAns(reply)
		if err != nil {
			errs[i] = rankErr(i, "query", err)
			return
		}
		for j := range cands {
			cands[j].T += slabs[i].T0
		}
		lists[i] = cands
		g.rebuilds[i] = rb
	})
	cov = g.gatherCoverage(errs)
	if g.c.policy == GatherFailFast {
		if err := g.gatherPolicyErr(errs); err != nil {
			return nil, cov, err
		}
	}
	return grid.MergeTopK(g.rt.spec, k, lists...), cov, nil
}

// Snapshot gathers every rank's raw slab grid, merges the disjoint slabs
// and normalizes once by the global live count — the O(G) baseline the
// sketch-merging queries above exist to avoid. A snapshot needs every
// slab, so any down rank fails it with an attributed RankError.
func (g *StreamGroup) Snapshot(b *grid.Budget) (*grid.Grid, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return nil, errors.New("dist: stream released")
	}
	sp := g.rt.spec
	slabs := g.rt.slabs
	for i := range slabs {
		if !g.rankSeeded(i) {
			return nil, rankErr(i, "snapshot", ErrRankDown)
		}
	}
	out, err := grid.NewGrid(sp, b)
	if err != nil {
		return nil, err
	}
	datas := make([][]float64, len(slabs))
	errs := make([]error, len(slabs))
	par.For(len(slabs), len(slabs), func(i int) {
		reply, err := g.c.streamCall(i, encodeSnapshot(g.id), "snapshot")
		if err != nil {
			errs[i] = err
			return
		}
		_, _, data, err := decodeGather(reply)
		if err != nil {
			errs[i] = rankErr(i, "snapshot", err)
			return
		}
		datas[i] = data
	})
	for _, err := range errs {
		if err != nil {
			out.Release()
			return nil, err
		}
	}
	for i, data := range datas {
		nt := slabs[i].T1 - slabs[i].T0 + 1
		if len(data) != sp.Gx*sp.Gy*nt {
			out.Release()
			return nil, rankErr(i, "snapshot", fmt.Errorf("slab grid has %d voxels, want %d", len(data), sp.Gx*sp.Gy*nt))
		}
		t0 := slabs[i].T0
		for X := 0; X < sp.Gx; X++ {
			for Y := 0; Y < sp.Gy; Y++ {
				src := data[(X*sp.Gy+Y)*nt : (X*sp.Gy+Y+1)*nt]
				dst := out.Idx(X, Y, t0)
				copy(out.Data[dst:dst+nt], src)
			}
		}
	}
	if n := len(g.rt.live); n > 0 {
		inv := 1 / float64(n)
		for i := range out.Data {
			out.Data[i] *= inv
		}
	} else {
		out.Zero()
	}
	return out, nil
}

// SketchRebuilds reports the cumulative sketch blocks rebuilt across all
// ranks, as of the latest analytics replies.
func (g *StreamGroup) SketchRebuilds() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var total int64
	for _, rb := range g.rebuilds {
		total += rb
	}
	return total
}

// Release closes the rank-side stream state. The group must not be used
// afterwards.
func (g *StreamGroup) Release() {
	g.mu.Lock()
	if g.released {
		g.mu.Unlock()
		return
	}
	g.released = true
	g.mu.Unlock()
	g.c.unregisterReseeder(g.id)
	g.closeRanks()
}
