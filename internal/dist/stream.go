package dist

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/grid"
	"repro/internal/par"
)

// StreamGroup is a live sliding window sharded across the cluster's ranks
// by temporal slab carving: rank i hosts a core.Updater on slab i's
// sub-spec and receives exactly the events whose temporal influence reaches
// its slab (owner + halo, the batch estimator's replication rule applied to
// a stream). The coordinator keeps the authoritative live list — every
// ingested event, with a bitmask of the ranks it has been replicated to —
// because the global normalization count n and the halo top-up on window
// advances both need it.
//
// Analytics never gather grids. Region mass and single-voxel reads merge
// O(1) raw partial sums from the ranks' incremental sketches; hotspots
// merge O(k) candidate lists scaled rank-side by the *global* 1/n, which
// keeps every candidate density bitwise identical to a single-process scan
// and therefore preserves the selection's index tie-breaks (grid.MergeTopK).
// Snapshot is the one O(G) operation left, retained as the baseline the
// "shard" benchmark compares the sketch gather against.
//
// Window advances broadcast one layer count k to every rank, so all slab
// windows stay in the same frame forever. An event newly entering a rank's
// halo (it was wholly ahead of that slab before the advance) is shipped
// with the advance message; its influence was disjoint from the slab's old
// window, so adding it cannot double-count on surviving layers.
//
// StreamGroup is safe for concurrent use: a single mutex orders mutations
// and queries exactly like the single-process Updater's.
type StreamGroup struct {
	mu       sync.Mutex
	c        *Cluster
	id       uint64
	spec     grid.Spec   // root window spec; OT advances with the window
	slabs    []grid.Slab // carved once; T0/T1 are window-relative layers
	live     []liveEvent
	rebuilds []int64 // last reported per-rank sketch rebuild counters
	released bool
}

// liveEvent is one ingested event plus its rank-replication mask.
type liveEvent struct {
	p    grid.Point
	mask uint64
}

// maxStreamRanks bounds the replication bitmask width.
const maxStreamRanks = 64

// NewStream creates a sharded live window over the cluster: the window
// spec's time axis is carved into one slab per connected rank (clamped to
// the layer count and the bitmask width) and each rank builds an empty
// slab Updater with the given thread count.
func (c *Cluster) NewStream(spec grid.Spec, threads int) (*StreamGroup, error) {
	ranks := c.Ranks()
	if ranks > maxStreamRanks {
		ranks = maxStreamRanks
	}
	slabs := spec.CarveT(ranks)
	if threads < 1 {
		threads = 1
	}
	g := &StreamGroup{
		c:        c,
		id:       c.nextStream.Add(1),
		spec:     spec,
		slabs:    slabs,
		rebuilds: make([]int64, len(slabs)),
	}
	errs := make([]error, len(slabs))
	par.For(len(slabs), len(slabs), func(i int) {
		reply, err := c.call(i, encodeStreamCreate(g.id, threads, slabs[i].Spec), "create")
		if err == nil {
			_, _, err = decodeOK(reply)
			err = rankErr(i, "create", err)
		}
		errs[i] = err
	})
	for _, err := range errs {
		if err != nil {
			g.closeRanks()
			return nil, err
		}
	}
	return g, nil
}

// closeRanks best-effort closes the rank-side stream state.
func (g *StreamGroup) closeRanks() {
	par.For(len(g.slabs), len(g.slabs), func(i int) {
		if reply, err := g.c.call(i, encodeStreamClose(g.id), "close"); err == nil {
			decodeOK(reply)
		}
	})
}

// layerOf returns the window-relative temporal layer of t as a float (no
// clamping, no int conversion — comparisons against slab bounds stay exact
// and overflow-free for any input).
func (g *StreamGroup) layerOf(t float64) float64 {
	return math.Floor((t-g.spec.Domain.T0)/g.spec.TRes) - float64(g.spec.OT)
}

// needs reports whether an event at window-relative layer tl (float; may be
// NaN for absurd inputs, which fails both comparisons) can influence slab sl.
func needs(sl grid.Slab, tl float64, ht int) bool {
	return tl >= float64(sl.T0-ht) && tl <= float64(sl.T1+ht)
}

// Add ingests events: each is routed to every rank whose slab its temporal
// influence reaches (possibly none, for events far ahead of the window —
// they still count toward n and are shipped later by AdvanceTo when their
// halo arrives) and appended to the coordinator's live list.
func (g *StreamGroup) Add(pts ...grid.Point) error {
	if len(pts) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return errors.New("dist: stream released")
	}
	batches := make([][]grid.Point, len(g.slabs))
	for _, p := range pts {
		tl := g.layerOf(p.T)
		var mask uint64
		for i, sl := range g.slabs {
			if needs(sl, tl, g.spec.Ht) {
				mask |= 1 << uint(i)
				batches[i] = append(batches[i], p)
			}
		}
		g.live = append(g.live, liveEvent{p: p, mask: mask})
	}
	return g.fanOut("ingest", func(i int) ([]byte, bool) {
		if len(batches[i]) == 0 {
			return nil, false
		}
		return encodeIngest(g.id, batches[i]), true
	}, nil)
}

// AdvanceTo slides every rank's window forward so the last layer covers
// time t, expiring events exactly like the single-process Updater (same
// float expressions, same order) and topping up each rank's halo with the
// events that newly reach its slab. It returns the layers advanced and the
// events expired.
func (g *StreamGroup) AdvanceTo(t float64) (advanced, expired int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return 0, 0, errors.New("dist: stream released")
	}
	sp := g.spec
	rel := math.Floor((t - sp.Domain.T0) / sp.TRes)
	// Same conversion guard as core.Updater.AdvanceTo: NaN and out-of-range
	// targets must no-op, not corrupt the frame offset.
	if !(rel > -(1<<52) && rel < 1<<52) {
		return 0, 0, nil
	}
	k := int(rel) - (sp.OT + sp.Gt - 1)
	if k <= 0 {
		return 0, 0, nil
	}
	g.spec.OT += k
	sp = g.spec
	// Expire exactly like the single-process window: an event whose support
	// ends strictly before the first layer's center is inert everywhere.
	firstCenter := sp.CenterT(0)
	kept := g.live[:0]
	for _, ev := range g.live {
		if ev.p.T+sp.HT < firstCenter {
			expired++
			continue
		}
		kept = append(kept, ev)
	}
	g.live = kept
	// Halo top-up: events that newly reach a slab (their influence was
	// disjoint from that slab's old window, so the rank-side Add cannot
	// double-count on surviving layers).
	batches := make([][]grid.Point, len(g.slabs))
	for idx := range g.live {
		tl := g.layerOf(g.live[idx].p.T)
		for i, sl := range g.slabs {
			bit := uint64(1) << uint(i)
			if g.live[idx].mask&bit != 0 {
				continue
			}
			if needs(sl, tl, sp.Ht) {
				g.live[idx].mask |= bit
				batches[i] = append(batches[i], g.live[idx].p)
			}
		}
	}
	err = g.fanOut("advance", func(i int) ([]byte, bool) {
		return encodeAdvance(g.id, k, batches[i]), true
	}, nil)
	return k, expired, err
}

// fanOut sends one request per rank (skipping ranks where build returns
// false), decodes msgOK acknowledgements, and returns the first failure.
// onReply, when non-nil, receives each rank's OK payload.
func (g *StreamGroup) fanOut(phase string, build func(i int) ([]byte, bool), onReply func(i int, a, b int64)) error {
	errs := make([]error, len(g.slabs))
	par.For(len(g.slabs), len(g.slabs), func(i int) {
		req, ok := build(i)
		if !ok {
			return
		}
		reply, err := g.c.call(i, req, phase)
		if err != nil {
			errs[i] = err
			return
		}
		a, b, err := decodeOK(reply)
		if err != nil {
			errs[i] = rankErr(i, phase, err)
			return
		}
		if onReply != nil {
			onReply(i, a, b)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Spec returns the current window spec (OT reflects every advance).
func (g *StreamGroup) Spec() grid.Spec {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spec
}

// Window returns the continuous time range [t0, t1) the window covers.
func (g *StreamGroup) Window() (t0, t1 float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	sp := g.spec
	t0 = sp.Domain.T0 + float64(sp.OT)*sp.TRes
	return t0, t0 + float64(sp.Gt)*sp.TRes
}

// N returns the number of live events in the window.
func (g *StreamGroup) N() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.live)
}

// Live returns a copy of the live events in ingest order.
func (g *StreamGroup) Live() []grid.Point {
	g.mu.Lock()
	defer g.mu.Unlock()
	pts := make([]grid.Point, len(g.live))
	for i, ev := range g.live {
		pts[i] = ev.p
	}
	return pts
}

// At returns the normalized density at window voxel (X, Y, T): a one-voxel
// raw region read from the owning rank (the sketch's boundary scan returns
// the exact raw voxel), normalized by the global live count.
func (g *StreamGroup) At(X, Y, T int) (float64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return 0, errors.New("dist: stream released")
	}
	n := len(g.live)
	if n == 0 {
		return 0, nil
	}
	for i, sl := range g.slabs {
		if T >= sl.T0 && T <= sl.T1 {
			b := grid.Box{X0: X, X1: X, Y0: Y, Y1: Y, T0: T - sl.T0, T1: T - sl.T0}
			reply, err := g.c.call(i, encodeRegion(g.id, b), "query")
			if err != nil {
				return 0, err
			}
			v, rb, err := decodeSum(reply)
			if err != nil {
				return 0, rankErr(i, "query", err)
			}
			g.rebuilds[i] = rb
			return v / float64(n), nil
		}
	}
	return 0, fmt.Errorf("dist: voxel layer %d outside the window", T)
}

// BoxMass integrates the normalized window density over a logical voxel
// box: each overlapping rank answers the raw partial sum of its slab's
// share from its incremental sketch, and the partials are combined in rank
// order (deterministic summation) before the single global normalization.
func (g *StreamGroup) BoxMass(b grid.Box) (float64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return 0, errors.New("dist: stream released")
	}
	n := len(g.live)
	if n == 0 {
		return 0, nil
	}
	sp := g.spec
	b = b.Clip(sp.Bounds())
	if b.Empty() {
		return 0, nil
	}
	sums := make([]float64, len(g.slabs))
	hits := make([]bool, len(g.slabs))
	errs := make([]error, len(g.slabs))
	par.For(len(g.slabs), len(g.slabs), func(i int) {
		sl := g.slabs[i]
		t0, t1 := b.T0, b.T1
		if t0 < sl.T0 {
			t0 = sl.T0
		}
		if t1 > sl.T1 {
			t1 = sl.T1
		}
		if t0 > t1 {
			return
		}
		lb := grid.Box{X0: b.X0, X1: b.X1, Y0: b.Y0, Y1: b.Y1, T0: t0 - sl.T0, T1: t1 - sl.T0}
		reply, err := g.c.call(i, encodeRegion(g.id, lb), "query")
		if err != nil {
			errs[i] = err
			return
		}
		v, rb, err := decodeSum(reply)
		if err != nil {
			errs[i] = rankErr(i, "query", err)
			return
		}
		sums[i], hits[i] = v, true
		g.rebuilds[i] = rb
	})
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := 0.0
	for i, v := range sums {
		if hits[i] {
			total += v
		}
	}
	return total / float64(n) * sp.SRes * sp.SRes * sp.TRes, nil
}

// TopK returns the k highest-density voxels of the merged window. Every
// rank selects its own k best with the global 1/n scale (so candidate
// values are bitwise the single-process scan's), candidates shift into the
// window frame, and MergeTopK re-selects under the same total order —
// every window voxel is owned by exactly one rank, so the global top-k is a
// subset of the union of the per-rank lists.
func (g *StreamGroup) TopK(k int) ([]grid.VoxelDensity, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return nil, errors.New("dist: stream released")
	}
	if k <= 0 {
		return nil, nil
	}
	scale := 0.0 // an empty window is exactly zero, like Snapshot
	if n := len(g.live); n > 0 {
		scale = 1 / float64(n)
	}
	lists := make([][]grid.VoxelDensity, len(g.slabs))
	errs := make([]error, len(g.slabs))
	par.For(len(g.slabs), len(g.slabs), func(i int) {
		reply, err := g.c.call(i, encodeTopK(g.id, k, scale), "query")
		if err != nil {
			errs[i] = err
			return
		}
		rb, cands, err := decodeTopKAns(reply)
		if err != nil {
			errs[i] = rankErr(i, "query", err)
			return
		}
		for j := range cands {
			cands[j].T += g.slabs[i].T0
		}
		lists[i] = cands
		g.rebuilds[i] = rb
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return grid.MergeTopK(g.spec, k, lists...), nil
}

// Snapshot gathers every rank's raw slab grid, merges the disjoint slabs
// and normalizes once by the global live count — the O(G) baseline the
// sketch-merging queries above exist to avoid.
func (g *StreamGroup) Snapshot(b *grid.Budget) (*grid.Grid, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.released {
		return nil, errors.New("dist: stream released")
	}
	sp := g.spec
	out, err := grid.NewGrid(sp, b)
	if err != nil {
		return nil, err
	}
	datas := make([][]float64, len(g.slabs))
	errs := make([]error, len(g.slabs))
	par.For(len(g.slabs), len(g.slabs), func(i int) {
		reply, err := g.c.call(i, encodeSnapshot(g.id), "snapshot")
		if err != nil {
			errs[i] = err
			return
		}
		_, _, data, err := decodeGather(reply)
		if err != nil {
			errs[i] = rankErr(i, "snapshot", err)
			return
		}
		datas[i] = data
	})
	for _, err := range errs {
		if err != nil {
			out.Release()
			return nil, err
		}
	}
	for i, data := range datas {
		nt := g.slabs[i].T1 - g.slabs[i].T0 + 1
		if len(data) != sp.Gx*sp.Gy*nt {
			out.Release()
			return nil, rankErr(i, "snapshot", fmt.Errorf("slab grid has %d voxels, want %d", len(data), sp.Gx*sp.Gy*nt))
		}
		t0 := g.slabs[i].T0
		for X := 0; X < sp.Gx; X++ {
			for Y := 0; Y < sp.Gy; Y++ {
				src := data[(X*sp.Gy+Y)*nt : (X*sp.Gy+Y+1)*nt]
				dst := out.Idx(X, Y, t0)
				copy(out.Data[dst:dst+nt], src)
			}
		}
	}
	if n := len(g.live); n > 0 {
		inv := 1 / float64(n)
		for i := range out.Data {
			out.Data[i] *= inv
		}
	} else {
		out.Zero()
	}
	return out, nil
}

// SketchRebuilds reports the cumulative sketch blocks rebuilt across all
// ranks, as of the latest analytics replies.
func (g *StreamGroup) SketchRebuilds() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var total int64
	for _, rb := range g.rebuilds {
		total += rb
	}
	return total
}

// Release closes the rank-side stream state. The group must not be used
// afterwards.
func (g *StreamGroup) Release() {
	g.mu.Lock()
	if g.released {
		g.mu.Unlock()
		return
	}
	g.released = true
	g.mu.Unlock()
	g.closeRanks()
}
