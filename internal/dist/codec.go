package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/grid"
)

// Wire format of the simulated messages. Every byte that a real
// distributed-memory run would move over the network is actually written
// with encoding/binary and read back on the receiving side, so ScatterBytes
// and GatherBytes in Stats are measured, not estimated.
//
//	scatter: kind(u32) rank(u32) count(u32) then count x (x, y, t) float64
//	gather:  kind(u32) rank(u32) t0(u32) voxels(u32) then voxels x float64
const (
	msgScatter uint32 = 1
	msgGather  uint32 = 2

	scatterHeaderBytes = 12
	gatherHeaderBytes  = 16
	pointBytes         = 24
)

var le = binary.LittleEndian

// encodeScatter serializes one rank's local point set (owned + halo).
func encodeScatter(rank int, pts []grid.Point) []byte {
	msg := make([]byte, scatterHeaderBytes+pointBytes*len(pts))
	le.PutUint32(msg[0:], msgScatter)
	le.PutUint32(msg[4:], uint32(rank))
	le.PutUint32(msg[8:], uint32(len(pts)))
	off := scatterHeaderBytes
	for _, p := range pts {
		le.PutUint64(msg[off:], math.Float64bits(p.X))
		le.PutUint64(msg[off+8:], math.Float64bits(p.Y))
		le.PutUint64(msg[off+16:], math.Float64bits(p.T))
		off += pointBytes
	}
	return msg
}

// decodeScatter is the receiving side of encodeScatter.
func decodeScatter(msg []byte) (rank int, pts []grid.Point, err error) {
	if len(msg) < scatterHeaderBytes || le.Uint32(msg[0:]) != msgScatter {
		return 0, nil, fmt.Errorf("dist: malformed scatter message (%d bytes)", len(msg))
	}
	rank = int(le.Uint32(msg[4:]))
	count := int(le.Uint32(msg[8:]))
	if len(msg) != scatterHeaderBytes+pointBytes*count {
		return 0, nil, fmt.Errorf("dist: scatter message length %d does not match count %d", len(msg), count)
	}
	pts = make([]grid.Point, count)
	off := scatterHeaderBytes
	for i := range pts {
		pts[i] = grid.Point{
			X: math.Float64frombits(le.Uint64(msg[off:])),
			Y: math.Float64frombits(le.Uint64(msg[off+8:])),
			T: math.Float64frombits(le.Uint64(msg[off+16:])),
		}
		off += pointBytes
	}
	return rank, pts, nil
}

// encodeGather serializes one rank's computed slab: the density values of
// the local grid plus the root layer t0 where the slab starts.
func encodeGather(rank, t0 int, data []float64) []byte {
	msg := make([]byte, gatherHeaderBytes+8*len(data))
	le.PutUint32(msg[0:], msgGather)
	le.PutUint32(msg[4:], uint32(rank))
	le.PutUint32(msg[8:], uint32(t0))
	le.PutUint32(msg[12:], uint32(len(data)))
	off := gatherHeaderBytes
	for _, v := range data {
		le.PutUint64(msg[off:], math.Float64bits(v))
		off += 8
	}
	return msg
}

// decodeGather is the receiving side of encodeGather.
func decodeGather(msg []byte) (rank, t0 int, data []float64, err error) {
	if len(msg) < gatherHeaderBytes || le.Uint32(msg[0:]) != msgGather {
		return 0, 0, nil, fmt.Errorf("dist: malformed gather message (%d bytes)", len(msg))
	}
	rank = int(le.Uint32(msg[4:]))
	t0 = int(le.Uint32(msg[8:]))
	count := int(le.Uint32(msg[12:]))
	if len(msg) != gatherHeaderBytes+8*count {
		return 0, 0, nil, fmt.Errorf("dist: gather message length %d does not match count %d", len(msg), count)
	}
	data = make([]float64, count)
	off := gatherHeaderBytes
	for i := range data {
		data[i] = math.Float64frombits(le.Uint64(msg[off:]))
		off += 8
	}
	return rank, t0, data, nil
}
