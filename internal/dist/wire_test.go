package dist

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/grid"
)

// wireCorpus returns one well-formed message of every protocol kind.
func wireCorpus(t testing.TB) [][]byte {
	spec, err := grid.NewSpec(grid.Domain{GX: 20, GY: 16, GT: 12}, 1, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := []grid.Point{{X: 1, Y: 2, T: 3}, {X: 4.5, Y: 6.25, T: 7.125}}
	return [][]byte{
		encodeScatter(3, pts),
		encodeGather(2, 5, []float64{1, 2.5, -3}),
		encodeEstimate(estimateReq{rank: 1, threads: 2, normN: 42, alg: "pb-sym", spec: spec, pts: pts}),
		encodeErr("scatter", "boom"),
		encodeOK(7, -1),
		encodeStreamCreate(9, 2, spec),
		encodeStreamClose(9),
		encodeIngest(9, pts),
		encodeAdvance(9, 3, pts),
		encodeRegion(9, grid.Box{X0: 1, X1: 4, Y0: 0, Y1: 3, T0: 2, T1: 6}),
		encodeSum(0.25, 11),
		encodeTopK(9, 5, 0.5),
		encodeTopKAns(4, []grid.VoxelDensity{{X: 1, Y: 2, T: 3, V: 0.5}}),
		encodeSnapshot(9),
		encodePing(31),
	}
}

// TestDecodeAnyCorpus: every well-formed message decodes, and every strict
// prefix of it is rejected — a truncated frame can never decode as a valid
// shorter message of the same kind.
func TestDecodeAnyCorpus(t *testing.T) {
	for i, msg := range wireCorpus(t) {
		if err := decodeAny(msg); err != nil {
			t.Fatalf("corpus[%d] (kind %d): %v", i, le.Uint32(msg), err)
		}
		for cut := 0; cut < len(msg); cut++ {
			if err := decodeAny(msg[:cut]); err == nil {
				t.Fatalf("corpus[%d] (kind %d): truncation to %d/%d bytes decoded without error",
					i, le.Uint32(msg), cut, len(msg))
			}
		}
	}
}

// TestDecodeCorruptMessages rejects structurally corrupt payloads: trailing
// garbage, absurd element counts, unknown kinds, and non-finite spec fields.
func TestDecodeCorruptMessages(t *testing.T) {
	corpus := wireCorpus(t)
	for i, msg := range corpus {
		withTrailer := append(append([]byte(nil), msg...), 0xEE)
		if err := decodeAny(withTrailer); err == nil {
			t.Errorf("corpus[%d] (kind %d): trailing byte decoded without error", i, le.Uint32(msg))
		}
	}

	huge := encodeIngest(1, nil)
	le.PutUint32(huge[12:], 1<<31-1) // count says 2^31-1 points, zero bytes follow
	if err := decodeAny(huge); err == nil {
		t.Error("ingest with absurd point count decoded without error")
	}

	unknown := make([]byte, 8)
	le.PutUint32(unknown, 999)
	if err := decodeAny(unknown); err == nil {
		t.Error("unknown message kind decoded without error")
	}

	if err := decodeAny(nil); err == nil {
		t.Error("empty message decoded without error")
	}
}

// FuzzDecode throws arbitrary bytes at the dispatching decoder: it must
// never panic and never allocate unboundedly, whatever the input claims.
func FuzzDecode(f *testing.F) {
	for _, msg := range wireCorpus(f) {
		f.Add(msg)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = decodeAny(data) // must not panic
	})
}

// limitedReader fails the test if more than the framed prefix is read,
// proving the frame layer rejects an oversized length announcement before
// attempting to allocate or read the payload.
type limitedReader struct {
	t    *testing.T
	data []byte
	off  int
}

func (r *limitedReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		r.t.Fatal("frame layer read past the length prefix of an invalid frame")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestOversizedFramePrefixErrors: a length prefix above maxFrameBytes (or
// zero) must fail before any payload is read or allocated — a corrupt or
// malicious peer cannot make the receiver allocate gigabytes.
func TestOversizedFramePrefixErrors(t *testing.T) {
	for _, n := range []uint32{0, maxFrameBytes + 1, 1<<32 - 1} {
		prefix := make([]byte, frameHeaderBytes)
		le.PutUint32(prefix, n)
		if _, err := readFrame(&limitedReader{t: t, data: prefix}); err == nil {
			t.Errorf("frame with declared length %d read without error", n)
		}
	}
}

// TestTruncatedFrame: a frame whose payload is shorter than its prefix
// announces must surface an unexpected-EOF error, not a short message.
func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello wire")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		if _, err := readFrame(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("frame truncated to %d/%d bytes read without error", cut, len(whole))
		}
	}
	msg, err := readFrame(bytes.NewReader(whole))
	if err != nil || string(msg) != "hello wire" {
		t.Fatalf("round trip: %q, %v", msg, err)
	}
	if _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}
