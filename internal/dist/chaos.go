package dist

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Chaos wraps a Transport with deterministic fault injection for testing
// the cluster's failure handling: per-address partitions (dials refused,
// live connections severed), probabilistic injected errors, and fixed
// added delay per operation. All randomness comes from one seeded
// generator, so a failing test reproduces from its seed.
//
// Chaos only shapes the coordinator-side dial path (Listen passes
// through), which is where the cluster's retry, health and re-seed
// machinery lives; rank-side crashes are modeled in tests by closing the
// RankServer itself.
type Chaos struct {
	inner Transport

	mu          sync.Mutex
	rng         *rand.Rand
	errRate     float64
	delay       time.Duration
	partitioned map[string]bool
	conns       map[string]map[*chaosConn]struct{}
}

// NewChaos wraps inner with fault injection driven by the given seed.
func NewChaos(inner Transport, seed int64) *Chaos {
	return &Chaos{
		inner:       inner,
		rng:         rand.New(rand.NewSource(seed)),
		partitioned: make(map[string]bool),
		conns:       make(map[string]map[*chaosConn]struct{}),
	}
}

// Listen passes through to the wrapped transport.
func (c *Chaos) Listen(addr string) (Listener, error) { return c.inner.Listen(addr) }

// Dial refuses partitioned addresses and wraps successful connections so
// later faults apply to them.
func (c *Chaos) Dial(addr string) (Conn, error) {
	c.mu.Lock()
	blocked := c.partitioned[addr]
	c.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("chaos: %s is partitioned", addr)
	}
	conn, err := c.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	cc := &chaosConn{c: conn, ch: c, addr: addr}
	c.mu.Lock()
	if c.conns[addr] == nil {
		c.conns[addr] = make(map[*chaosConn]struct{})
	}
	c.conns[addr][cc] = struct{}{}
	c.mu.Unlock()
	return cc, nil
}

// Partition blocks (on=true) or heals (on=false) the path to addr.
// Turning a partition on severs every live connection to the address, so
// in-flight and pending operations fail promptly instead of timing out.
func (c *Chaos) Partition(addr string, on bool) {
	c.mu.Lock()
	c.partitioned[addr] = on
	var sever []*chaosConn
	if on {
		for cc := range c.conns[addr] {
			sever = append(sever, cc)
		}
	}
	c.mu.Unlock()
	for _, cc := range sever {
		cc.Close()
	}
}

// SetErrorRate makes each Send fail (and sever its connection) with
// probability p.
func (c *Chaos) SetErrorRate(p float64) {
	c.mu.Lock()
	c.errRate = p
	c.mu.Unlock()
}

// SetDelay adds d before every Send, modeling a slow or congested link.
// The delay respects the operation's context, so cancellation still
// interrupts a delayed operation promptly.
func (c *Chaos) SetDelay(d time.Duration) {
	c.mu.Lock()
	c.delay = d
	c.mu.Unlock()
}

func (c *Chaos) drop(cc *chaosConn) {
	c.mu.Lock()
	if m := c.conns[cc.addr]; m != nil {
		delete(m, cc)
	}
	c.mu.Unlock()
}

type chaosConn struct {
	c    Conn
	ch   *Chaos
	addr string
}

// gate applies the configured faults to one operation: partition check,
// context-aware delay, then a seeded error roll that severs the
// connection (a real network fault never fails politely in place).
func (cc *chaosConn) gate(ctx context.Context) error {
	ch := cc.ch
	ch.mu.Lock()
	blocked := ch.partitioned[cc.addr]
	delay := ch.delay
	var roll float64
	rate := ch.errRate
	if rate > 0 {
		roll = ch.rng.Float64()
	}
	ch.mu.Unlock()
	if blocked {
		cc.Close()
		return fmt.Errorf("chaos: %s is partitioned", cc.addr)
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if rate > 0 && roll < rate {
		cc.Close()
		return fmt.Errorf("chaos: injected fault to %s", cc.addr)
	}
	return nil
}

func (cc *chaosConn) Send(ctx context.Context, msg []byte) error {
	if err := cc.gate(ctx); err != nil {
		return err
	}
	return cc.c.Send(ctx, msg)
}

func (cc *chaosConn) Recv(ctx context.Context) ([]byte, error) {
	return cc.c.Recv(ctx)
}

func (cc *chaosConn) Close() error {
	cc.ch.drop(cc)
	return cc.c.Close()
}
