package dist

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frames on the byte-stream transport: every message is prefixed with its
// u32 little-endian payload length. The prefix is the only framing state, so
// a reader that loses sync fails loudly (length sanity check) instead of
// silently misparsing.
const (
	frameHeaderBytes = 4

	// maxFrameBytes bounds a single message. A hostile or corrupt length
	// prefix must be rejected *before* the payload buffer is allocated —
	// otherwise four bytes of garbage could demand gigabytes. 1 GiB admits
	// the largest slab-grid gathers the benchmarks exercise with room to
	// spare while keeping the allocation bounded.
	maxFrameBytes = 1 << 30
)

// writeFrame writes one length-prefixed message.
func writeFrame(w io.Writer, msg []byte) error {
	if len(msg) > maxFrameBytes {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", len(msg), maxFrameBytes)
	}
	var hdr [frameHeaderBytes]byte
	le.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// readFrame reads one length-prefixed message. An oversized prefix is an
// error before any payload allocation happens.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("dist: empty frame")
	}
	if n > maxFrameBytes {
		return nil, fmt.Errorf("dist: frame prefix announces %d bytes, limit is %d", n, maxFrameBytes)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}
