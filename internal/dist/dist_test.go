package dist

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/grid"
)

func testSpec(t *testing.T, gt float64, tres float64) grid.Spec {
	t.Helper()
	s, err := grid.NewSpec(grid.Domain{GX: 50, GY: 40, GT: gt}, 1, tres, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testPoints(n int, d grid.Domain, seed uint64) []grid.Point {
	return data.Epidemic{Clusters: 3, Waves: 2}.Generate(n, d, seed)
}

func maxAbsDiff(a, b *grid.Grid) float64 {
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// TestDistributedMatchesPBSYM is the exactness criterion of the simulated
// distributed estimator: for every rank count — including ones that do not
// divide the temporal grid — the merged R-rank volume equals the
// single-process PB-SYM volume within 1e-9.
func TestDistributedMatchesPBSYM(t *testing.T) {
	spec := testSpec(t, 45, 1) // Gt=45: indivisible by 2, 4 and 7
	pts := testPoints(3000, spec.Domain, 11)
	ref, err := core.Estimate(core.AlgPBSYM, pts, spec, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 4, 7} {
		res, err := Estimate(pts, spec, Options{Ranks: r})
		if err != nil {
			t.Fatalf("ranks=%d: %v", r, err)
		}
		if res.Stats.Ranks != r {
			t.Errorf("ranks=%d: Stats.Ranks = %d", r, res.Stats.Ranks)
		}
		if d := maxAbsDiff(ref.Grid, res.Grid); d > 1e-9 {
			t.Errorf("ranks=%d: max abs diff vs PB-SYM = %g, want <= 1e-9", r, d)
		}
		res.Grid.Release()
	}
	ref.Grid.Release()
}

// TestDistributedLocalStrategies checks that ranks can reuse other
// strategies of the shared-memory family, sequential and parallel.
func TestDistributedLocalStrategies(t *testing.T) {
	spec := testSpec(t, 32, 1)
	pts := testPoints(1500, spec.Domain, 5)
	ref, err := core.Estimate(core.AlgPBSYM, pts, spec, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Grid.Release()
	for _, alg := range []string{core.AlgPB, core.AlgPBSYMDR, core.AlgPBSYMDD, core.AlgPBSYMPD} {
		res, err := Estimate(pts, spec, Options{
			Ranks:     3,
			Algorithm: alg,
			Local:     core.Options{Threads: 2},
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Algorithm != alg {
			t.Errorf("%s: Result.Algorithm = %q", alg, res.Algorithm)
		}
		if d := maxAbsDiff(ref.Grid, res.Grid); d > 1e-9 {
			t.Errorf("%s: max abs diff vs PB-SYM = %g, want <= 1e-9", alg, d)
		}
		res.Grid.Release()
	}
}

// TestHaloReplicationBruteForce cross-checks Stats.ReplicatedPts against a
// direct count from the definition: one copy for every (point, slab) pair
// where the slab needs the point but does not own its temporal voxel.
func TestHaloReplicationBruteForce(t *testing.T) {
	spec := testSpec(t, 45, 1)
	pts := testPoints(2000, spec.Domain, 3)
	for _, r := range []int{1, 2, 4, 7} {
		res, err := Estimate(pts, spec, Options{Ranks: r})
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		assigned := 0
		for _, p := range pts {
			owners := 0
			_, _, T := spec.VoxelOf(p)
			for _, sl := range spec.CarveT(r) {
				if sl.NeedsLayer(T, spec.Ht) {
					assigned++
					if sl.OwnsLayer(T) {
						owners++
					} else {
						want++
					}
				}
			}
			if owners != 1 {
				t.Fatalf("point %+v has %d owners", p, owners)
			}
		}
		if res.Stats.ReplicatedPts != want {
			t.Errorf("ranks=%d: ReplicatedPts = %d, brute force says %d", r, res.Stats.ReplicatedPts, want)
		}
		sum := 0
		for _, n := range res.Stats.RankPoints {
			sum += n
		}
		if sum != assigned || sum != len(pts)+want {
			t.Errorf("ranks=%d: rank points sum to %d, want %d (n=%d + replicated=%d)",
				r, sum, assigned, len(pts), want)
		}
		if r > 1 && want == 0 {
			t.Errorf("ranks=%d: expected some halo replication with Ht=%d", r, spec.Ht)
		}
		res.Grid.Release()
	}
}

// TestCommunicationProfile pins down the message accounting: R scatter plus
// R gather messages, scatter bytes matching the framed estimate requests,
// gather bytes matching the framed slab-grid replies.
func TestCommunicationProfile(t *testing.T) {
	spec := testSpec(t, 40, 1)
	pts := testPoints(800, spec.Domain, 9)
	const r = 4
	res, err := Estimate(pts, spec, Options{Ranks: r})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Grid.Release()
	st := res.Stats
	if st.Messages != 2*r {
		t.Errorf("Messages = %d, want %d", st.Messages, 2*r)
	}
	// Each scatter frame: prefix + the estimate request (fixed header, spec,
	// algorithm name, then the rank's owned + halo points).
	perReq := int64(frameHeaderBytes + 28 + specBytes + len(core.AlgPBSYM))
	wantScatter := r*perReq + int64(pointBytes)*(int64(len(pts))+int64(st.ReplicatedPts))
	if st.ScatterBytes != wantScatter {
		t.Errorf("ScatterBytes = %d, want %d", st.ScatterBytes, wantScatter)
	}
	wantGather := int64(r*(frameHeaderBytes+gatherHeaderBytes)) + 8*int64(spec.Voxels())
	if st.GatherBytes != wantGather {
		t.Errorf("GatherBytes = %d, want %d", st.GatherBytes, wantGather)
	}
	if st.Imbalance < 1 {
		t.Errorf("Imbalance = %g, want >= 1", st.Imbalance)
	}
}

// TestRanksClamped: more ranks than temporal layers degrades gracefully to
// one layer per rank, and the result is still exact.
func TestRanksClamped(t *testing.T) {
	spec := testSpec(t, 6, 1)
	pts := testPoints(300, spec.Domain, 2)
	res, err := Estimate(pts, spec, Options{Ranks: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Grid.Release()
	if res.Stats.Ranks != spec.Gt {
		t.Errorf("Ranks = %d, want clamp to Gt=%d", res.Stats.Ranks, spec.Gt)
	}
	ref, err := core.Estimate(core.AlgPBSYM, pts, spec, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Grid.Release()
	if d := maxAbsDiff(ref.Grid, res.Grid); d > 1e-9 {
		t.Errorf("max abs diff = %g", d)
	}
}

// TestFractionalResolution runs the exactness check on a spec with
// non-integer temporal resolution, where voxel centers are not exactly
// representable — the case the bitwise-center SubSpecT design is for.
func TestFractionalResolution(t *testing.T) {
	spec := testSpec(t, 21, 0.7)
	pts := testPoints(1000, spec.Domain, 17)
	ref, err := core.Estimate(core.AlgPBSYM, pts, spec, core.Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Grid.Release()
	res, err := Estimate(pts, spec, Options{Ranks: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Grid.Release()
	if d := maxAbsDiff(ref.Grid, res.Grid); d > 1e-9 {
		t.Errorf("max abs diff = %g, want <= 1e-9", d)
	}
}

// TestOptionValidation covers the rejected configurations.
func TestOptionValidation(t *testing.T) {
	spec := testSpec(t, 20, 1)
	pts := testPoints(100, spec.Domain, 1)
	if _, err := Estimate(pts, spec, Options{Ranks: 2, Local: core.Options{
		AdaptiveBandwidth: func(grid.Point) float64 { return 1 },
	}}); err == nil {
		t.Error("adaptive bandwidth should be rejected")
	}
	if _, err := Estimate(pts, spec, Options{Ranks: 2, Local: core.Options{NormN: 7}}); err == nil {
		t.Error("preset NormN should be rejected")
	}
	if _, err := Estimate(pts, spec, Options{Ranks: 2, Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm should be rejected")
	}
}

// TestCodecRoundTrip checks the wire format is lossless.
func TestCodecRoundTrip(t *testing.T) {
	pts := []grid.Point{{X: 1.5, Y: -2.25, T: 1e-300}, {X: math.Pi, Y: 0, T: 42}}
	rank, got, err := decodeScatter(encodeScatter(3, pts))
	if err != nil || rank != 3 || len(got) != len(pts) {
		t.Fatalf("scatter round trip: rank=%d err=%v", rank, err)
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Errorf("point %d = %+v, want %+v", i, got[i], pts[i])
		}
	}
	vals := []float64{0, -1.25, math.Inf(1), 1e-308}
	rank, t0, data, err := decodeGather(encodeGather(2, 17, vals))
	if err != nil || rank != 2 || t0 != 17 {
		t.Fatalf("gather round trip: rank=%d t0=%d err=%v", rank, t0, err)
	}
	for i := range vals {
		if data[i] != vals[i] {
			t.Errorf("voxel %d = %v, want %v", i, data[i], vals[i])
		}
	}
	if _, _, err := decodeScatter([]byte{1, 2, 3}); err == nil {
		t.Error("truncated scatter should fail")
	}
	if _, _, _, err := decodeGather(encodeScatter(0, nil)); err == nil {
		t.Error("kind mismatch should fail")
	}
}

// TestEmptyPointSet: zero events produce a zero grid and a sane profile.
func TestEmptyPointSet(t *testing.T) {
	spec := testSpec(t, 16, 1)
	res, err := Estimate(nil, spec, Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Grid.Release()
	if s := res.Grid.Sum(); s != 0 {
		t.Errorf("sum = %g, want 0", s)
	}
	if res.Stats.Imbalance != 1 {
		t.Errorf("Imbalance = %g, want 1", res.Stats.Imbalance)
	}
}

// TestDistributedBitwiseWithMortonSort pins the strong form of the
// exactness contract under the Morton locality pre-pass: because ranks
// sort their subsets by the ROOT spec's key (not the sub-spec frame), the
// merged R-rank volume with the default sequential PB-SYM is bitwise equal
// to the single-process run, sorted or not.
func TestDistributedBitwiseWithMortonSort(t *testing.T) {
	spec := testSpec(t, 45, 1)
	pts := testPoints(2500, spec.Domain, 29)
	for _, nosort := range []bool{false, true} {
		ref, err := core.Estimate(core.AlgPBSYM, pts, spec,
			core.Options{Threads: 1, NoSort: nosort})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{2, 4, 7} {
			res, err := Estimate(pts, spec, Options{
				Ranks: r, Local: core.Options{NoSort: nosort},
			})
			if err != nil {
				t.Fatalf("ranks=%d nosort=%t: %v", r, nosort, err)
			}
			for i := range ref.Grid.Data {
				if ref.Grid.Data[i] != res.Grid.Data[i] {
					t.Fatalf("ranks=%d nosort=%t: voxel %d differs bitwise: %v vs %v",
						r, nosort, i, ref.Grid.Data[i], res.Grid.Data[i])
				}
			}
			res.Grid.Release()
		}
		ref.Grid.Release()
	}
}
