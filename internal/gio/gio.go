// Package gio provides the I/O substrate for STKDE: CSV event sets, binary
// grid snapshots, VTK structured-points export for 3-D visualization tools,
// and PNG heatmap slices (the Figure 1 style visualization).
package gio

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/grid"
)

// WritePoints writes events as CSV with an "x,y,t" header.
func WritePoints(w io.Writer, pts []grid.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x", "y", "t"}); err != nil {
		return fmt.Errorf("gio: write header: %w", err)
	}
	rec := make([]string, 3)
	for _, p := range pts {
		rec[0] = strconv.FormatFloat(p.X, 'g', -1, 64)
		rec[1] = strconv.FormatFloat(p.Y, 'g', -1, 64)
		rec[2] = strconv.FormatFloat(p.T, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("gio: write point: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPoints reads events from CSV. A first row of "x,y,t" (any case) is
// treated as a header and skipped; extra columns are ignored.
func ReadPoints(r io.Reader) ([]grid.Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	var pts []grid.Point
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return pts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("gio: read points: %w", err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("gio: row %d has %d fields, want >= 3", len(pts)+1, len(rec))
		}
		if first {
			first = false
			if _, err := strconv.ParseFloat(rec[0], 64); err != nil {
				continue // header row
			}
		}
		var p grid.Point
		var errs [3]error
		p.X, errs[0] = strconv.ParseFloat(rec[0], 64)
		p.Y, errs[1] = strconv.ParseFloat(rec[1], 64)
		p.T, errs[2] = strconv.ParseFloat(rec[2], 64)
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("gio: row %d: %w", len(pts)+1, e)
			}
		}
		pts = append(pts, p)
	}
}

// gridMagic identifies the binary grid snapshot format.
const gridMagic = "STKDEG1\n"

// WriteGrid writes a binary snapshot of the grid: a magic string, the
// little-endian spec geometry, and the raw float64 voxel data.
func WriteGrid(w io.Writer, g *grid.Grid) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(gridMagic); err != nil {
		return fmt.Errorf("gio: write magic: %w", err)
	}
	s := g.Spec
	header := []float64{
		s.Domain.X0, s.Domain.Y0, s.Domain.T0,
		s.Domain.GX, s.Domain.GY, s.Domain.GT,
		s.SRes, s.TRes, s.HS, s.HT,
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return fmt.Errorf("gio: write header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Data); err != nil {
		return fmt.Errorf("gio: write data: %w", err)
	}
	return bw.Flush()
}

// ReadGrid reads a snapshot written by WriteGrid.
func ReadGrid(r io.Reader) (*grid.Grid, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(gridMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gio: read magic: %w", err)
	}
	if string(magic) != gridMagic {
		return nil, fmt.Errorf("gio: bad magic %q", magic)
	}
	header := make([]float64, 10)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("gio: read header: %w", err)
	}
	spec, err := grid.NewSpec(grid.Domain{
		X0: header[0], Y0: header[1], T0: header[2],
		GX: header[3], GY: header[4], GT: header[5],
	}, header[6], header[7], header[8], header[9])
	if err != nil {
		return nil, fmt.Errorf("gio: invalid spec in snapshot: %w", err)
	}
	g, err := grid.NewGrid(spec, nil)
	if err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Data); err != nil {
		return nil, fmt.Errorf("gio: read data: %w", err)
	}
	return g, nil
}

// WriteVTK writes the grid as a legacy-format VTK structured-points file
// (ASCII), loadable in ParaView/VisIt for space-time cube visualization.
func WriteVTK(w io.Writer, g *grid.Grid, name string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	s := g.Spec
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n%s\nASCII\n", name)
	fmt.Fprintf(bw, "DATASET STRUCTURED_POINTS\n")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", s.Gx, s.Gy, s.Gt)
	fmt.Fprintf(bw, "ORIGIN %g %g %g\n", s.CenterX(0), s.CenterY(0), s.CenterT(0))
	fmt.Fprintf(bw, "SPACING %g %g %g\n", s.SRes, s.SRes, s.TRes)
	fmt.Fprintf(bw, "POINT_DATA %d\nSCALARS density double 1\nLOOKUP_TABLE default\n", s.Voxels())
	// VTK expects x fastest; our layout is t fastest, so iterate explicitly.
	for T := 0; T < s.Gt; T++ {
		for Y := 0; Y < s.Gy; Y++ {
			for X := 0; X < s.Gx; X++ {
				if _, err := fmt.Fprintf(bw, "%g\n", g.At(X, Y, T)); err != nil {
					return fmt.Errorf("gio: write vtk: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}
