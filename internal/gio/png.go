package gio

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/grid"
)

// heat maps a normalized density in [0, 1] to a blue->cyan->yellow->red
// ramp, the classic heatmap palette of GIS density maps.
func heat(v float64) color.NRGBA {
	if v <= 0 {
		return color.NRGBA{R: 8, G: 8, B: 40, A: 255}
	}
	if v > 1 {
		v = 1
	}
	// Piecewise-linear ramp over four stops.
	stops := [][3]float64{
		{8, 8, 40},    // deep blue
		{0, 140, 255}, // cyan
		{255, 220, 0}, // yellow
		{255, 30, 0},  // red
	}
	seg := v * float64(len(stops)-1)
	i := int(seg)
	if i >= len(stops)-1 {
		i = len(stops) - 2
	}
	f := seg - float64(i)
	mix := func(a, b float64) uint8 { return uint8(a + (b-a)*f) }
	return color.NRGBA{
		R: mix(stops[i][0], stops[i+1][0]),
		G: mix(stops[i][1], stops[i+1][1]),
		B: mix(stops[i][2], stops[i+1][2]),
		A: 255,
	}
}

// WritePNGSlice renders the temporal slice T of the grid as a PNG heatmap
// (the per-day maps of the paper's Figure 1). Densities are normalized by
// maxDensity; pass 0 to normalize by the slice's own maximum. Gamma < 1
// brightens low densities (0.5 is a good default).
func WritePNGSlice(w io.Writer, g *grid.Grid, T int, maxDensity, gamma float64) error {
	s := g.Spec
	if T < 0 || T >= s.Gt {
		return fmt.Errorf("gio: slice %d outside [0, %d)", T, s.Gt)
	}
	if maxDensity <= 0 {
		for X := 0; X < s.Gx; X++ {
			for Y := 0; Y < s.Gy; Y++ {
				if v := g.At(X, Y, T); v > maxDensity {
					maxDensity = v
				}
			}
		}
		if maxDensity == 0 {
			maxDensity = 1
		}
	}
	if gamma <= 0 {
		gamma = 0.5
	}
	img := image.NewNRGBA(image.Rect(0, 0, s.Gx, s.Gy))
	for X := 0; X < s.Gx; X++ {
		for Y := 0; Y < s.Gy; Y++ {
			v := g.At(X, Y, T) / maxDensity
			// Flip Y so north is up.
			img.SetNRGBA(X, s.Gy-1-Y, heat(math.Pow(v, gamma)))
		}
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("gio: encode png: %w", err)
	}
	return nil
}
