package gio

import (
	"bytes"
	"image/png"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/grid"
)

func testGrid(t *testing.T) *grid.Grid {
	t.Helper()
	spec, err := grid.NewSpec(grid.Domain{X0: -3, Y0: 2, T0: 10, GX: 7.5, GY: 5, GT: 9},
		0.5, 1.5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.NewGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := data.NewRNG(3)
	for i := range g.Data {
		g.Data[i] = r.Float64() * 10
	}
	return g
}

func TestPointsRoundTrip(t *testing.T) {
	pts := data.Uniform{}.Generate(500, grid.Domain{GX: 100, GY: 50, GT: 10}, 7)
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("read %d points, wrote %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
}

func TestReadPointsWithoutHeader(t *testing.T) {
	in := "1.5,2.5,3.5\n4,5,6\n"
	pts, err := ReadPoints(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0] != (grid.Point{X: 1.5, Y: 2.5, T: 3.5}) {
		t.Fatalf("got %v", pts)
	}
}

func TestReadPointsExtraColumns(t *testing.T) {
	in := "x,y,t,label\n1,2,3,case\n"
	pts, err := ReadPoints(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0] != (grid.Point{X: 1, Y: 2, T: 3}) {
		t.Fatalf("got %v", pts)
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, err := ReadPoints(strings.NewReader("x,y\n1,2\n")); err == nil {
		t.Error("expected error for too few columns")
	}
	if _, err := ReadPoints(strings.NewReader("x,y,t\n1,abc,3\n")); err == nil {
		t.Error("expected error for non-numeric value")
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := testGrid(t)
	var buf bytes.Buffer
	if err := WriteGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Gx != g.Spec.Gx || got.Spec.Gy != g.Spec.Gy || got.Spec.Gt != g.Spec.Gt {
		t.Fatalf("spec dims differ: %+v vs %+v", got.Spec, g.Spec)
	}
	if math.Abs(got.Spec.HS-g.Spec.HS) > 0 || math.Abs(got.Spec.TRes-g.Spec.TRes) > 0 {
		t.Fatalf("spec params differ")
	}
	for i := range g.Data {
		if got.Data[i] != g.Data[i] {
			t.Fatalf("voxel %d differs", i)
		}
	}
}

func TestReadGridBadMagic(t *testing.T) {
	if _, err := ReadGrid(strings.NewReader("NOTAGRID00000000")); err == nil {
		t.Error("expected bad-magic error")
	}
	if _, err := ReadGrid(strings.NewReader("")); err == nil {
		t.Error("expected error on empty input")
	}
}

func TestWriteVTK(t *testing.T) {
	g := testGrid(t)
	var buf bytes.Buffer
	if err := WriteVTK(&buf, g, "stkde test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET STRUCTURED_POINTS",
		"DIMENSIONS 15 10 6",
		"SCALARS density double 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// One scalar per voxel.
	lines := strings.Count(out, "\n")
	if lines < g.Spec.Voxels() {
		t.Errorf("VTK has %d lines, want >= %d voxels", lines, g.Spec.Voxels())
	}
}

func TestWritePNGSlice(t *testing.T) {
	g := testGrid(t)
	var buf bytes.Buffer
	if err := WritePNGSlice(&buf, g, 2, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != g.Spec.Gx || b.Dy() != g.Spec.Gy {
		t.Errorf("PNG is %dx%d, want %dx%d", b.Dx(), b.Dy(), g.Spec.Gx, g.Spec.Gy)
	}
	if err := WritePNGSlice(&buf, g, 99, 0, 0.5); err == nil {
		t.Error("expected error for out-of-range slice")
	}
	if err := WritePNGSlice(&buf, g, -1, 0, 0.5); err == nil {
		t.Error("expected error for negative slice")
	}
}

// TestHeatPaletteRange: every density maps to a valid opaque color and the
// ramp is monotone in red (low->high heat).
func TestHeatPaletteRange(t *testing.T) {
	check := func(vRaw uint16) bool {
		v := float64(vRaw) / 65535 * 1.5
		c := heat(v)
		return c.A == 255
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	if heat(0.0).R >= heat(1.0).R {
		t.Error("hot end should be redder than cold end")
	}
}

func TestPNGZeroGrid(t *testing.T) {
	spec, _ := grid.NewSpec(grid.Domain{GX: 4, GY: 4, GT: 2}, 1, 1, 1, 1)
	g, _ := grid.NewGrid(spec, nil)
	var buf bytes.Buffer
	if err := WritePNGSlice(&buf, g, 0, 0, 0); err != nil {
		t.Fatalf("zero grid must not fail: %v", err)
	}
}
