// Package repro is a from-scratch Go reproduction of Saule, Panchananam,
// Hohl, Tang and Delmelle, "Parallel Space-Time Kernel Density Estimation"
// (ICPP 2017, arXiv:1705.09366).
//
// Import the public API from repro/stkde (estimation) and repro/synth
// (synthetic datasets and the Table 2 benchmark catalog). The command-line
// tools live under cmd/ and the paper's tables and figures are regenerated
// by cmd/stkdebench and the benchmarks in bench_test.go.
//
// Beyond the paper's shared-memory algorithms, repro/internal/dist
// implements the paper's future-work item as a real distributed-memory
// estimator: the time axis is sharded into voxel-aligned temporal slabs
// (one per rank), boundary events are replicated to neighboring slabs (halo
// exchange), and each rank is a protocol endpoint (dist.RankServer) running
// any of the twelve shared-memory strategies on its slab, reached over
// framed TCP or a zero-copy in-process channel — one wire protocol behind
// both transports, with scatter/gather bytes counted at the framing layer.
// A cluster also hosts sharded live-stream windows whose region/hotspot
// queries are answered by merging per-rank incremental sketches instead of
// gathering grids. It is exposed as stkde.EstimateDistributed and the
// ShardNetwork/ShardRank/ShardCluster surface, the -ranks flag of
// cmd/stkde, the -shard-listen/-peers flags of cmd/stkded, and the "dist"
// and "shard" experiments of cmd/stkdebench.
//
// The PB-family hot path is a specialized compute engine: the in-disk Y
// range of every X column is computed once (disk spans), points are
// pre-sorted by the Morton index of their home voxel for cache locality,
// and kernels implementing the kernel.PolySpatial / kernel.PolyTemporal
// specialization hook (the default Epanechnikov, plus quartic, triweight
// and uniform) compile to monomorphic fill loops with no interface
// dispatch — user-supplied kernels transparently use the generic path.
// On amd64 the span primitives are further vectorized: repro/internal/simd
// provides hand-written AVX2 assembly (no FMA, so lane rounding matches
// the scalar loops bitwise) for the multiply-add row update and the packed
// disk/bar polynomial fills, selected once at startup by CPUID probing
// (stkde.EngineISA reports the choice; build with -tags purego to force
// the pure-Go fallbacks). All engine configurations produce
// bitwise-identical volumes; the "kernels" experiment of cmd/stkdebench
// records the speedup trajectory in BENCH_*.json files, each row tagged
// with the ISA that produced it.
//
// repro/internal/serve turns the library into a long-running service: a
// dataset registry with content-addressed ingestion, an LRU grid cache
// under a byte budget, singleflight request coalescing over a bounded
// estimation pool, and JSON HTTP endpoints for estimation jobs, voxel
// queries, region mass and top-k hotspots. It is exposed as
// stkde.NewDensityServer, the cmd/stkded daemon, and the "serve"
// experiment of cmd/stkdebench.
//
// Estimation is also available as a streaming process: core.Updater (the
// public stkde.Stream) owns a sliding temporal window of density stored in
// a ring-buffer grid (grid.Ring, built on the Spec.OT frame-offset
// machinery), folds events in and retracts them through the engine's
// signed-weight contribution primitive, advances the window by rotating
// the ring and zeroing only the freed layers, and bounds floating-point
// cancellation drift with a running residual estimate plus periodic
// compaction. The serving subsystem exposes it as mutable stream datasets
// (POST /v1/streams, /v1/datasets/{id}/events, /v1/datasets/{id}/advance)
// whose grids are updated in place, and the "stream" experiment of
// cmd/stkdebench records the ingest-vs-recompute trajectory in
// BENCH_stream.json.
//
// Analytics over the volume are sublinear: grid.Pyramid (the public
// stkde.NewPyramid) holds a 3-D summed-volume table answering box masses
// with an O(1) 8-corner lookup plus block maxima that prune top-k and
// threshold scans to the blocks that can still matter, and grid.RingSketch
// maintains the same aggregates incrementally inside a live stream's ring
// (per-event dirty bandwidth boxes, lazily rebuilt at query time), so the
// serving tier's /v1/region and /v1/hotspots answer from sketches on both
// static grids and live windows — the "analytics" experiment of
// cmd/stkdebench records the trajectory in BENCH_analytics.json.
//
// Live streams are durable: repro/internal/wal is a segmented write-ahead
// log (CRC-framed records, group-commit fsync batching, torn-tail
// truncation on recovery) with periodic window snapshots, so the serving
// tier journals every stream mutation before acknowledging it and a
// crashed daemon restarts warm — snapshot load plus bounded tail replay,
// bitwise-identical to an uninterrupted run. Enabled by the -wal-dir /
// -wal-sync / -snapshot-every flags of cmd/stkded, inspected offline by
// cmd/stkdewal, and measured by the "recover" experiment of cmd/stkdebench
// (BENCH_recover.json).
//
// The serving tier is overload-safe: an admission layer in front of the
// estimation pool prices every request with the paper's performance model
// (repro/internal/model, calibrated on the host at startup) and sheds work
// whose predicted queue wait exceeds a configured SLO — 429 plus a
// Retry-After derived from the prediction — while a bounded, context-aware
// queue dequeues round-robin across tenants (X-Tenant header) under
// multi-interval sliding-window rate limits, evicting from the
// most-backlogged tenant when full. Enabled by the -slo-ms / -queue-depth
// / -tenant-rate flags of cmd/stkded, observable via /healthz and the
// admission_* expvars, and proven by the "overload" experiment of
// cmd/stkdebench (BENCH_overload.json): at ~9x measured capacity the
// admitted p99 stays within twice the SLO and under-limit tenants are not
// starved.
package repro
