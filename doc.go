// Package repro is a from-scratch Go reproduction of Saule, Panchananam,
// Hohl, Tang and Delmelle, "Parallel Space-Time Kernel Density Estimation"
// (ICPP 2017, arXiv:1705.09366).
//
// Import the public API from repro/stkde (estimation) and repro/synth
// (synthetic datasets and the Table 2 benchmark catalog). The command-line
// tools live under cmd/ and the paper's tables and figures are regenerated
// by cmd/stkdebench and the benchmarks in bench_test.go.
//
// Beyond the paper's shared-memory algorithms, repro/internal/dist
// implements the paper's future-work item as a simulated distributed-memory
// estimator: the time axis is sharded into voxel-aligned temporal slabs
// (one per rank), boundary events are replicated to neighboring slabs (halo
// exchange), each rank runs any of the twelve shared-memory strategies on
// its slab, and serialized scatter/gather messages are counted byte by
// byte. It is exposed as stkde.EstimateDistributed, the -ranks flag of
// cmd/stkde, and the "dist" experiment of cmd/stkdebench.
package repro
