// Package repro is a from-scratch Go reproduction of Saule, Panchananam,
// Hohl, Tang and Delmelle, "Parallel Space-Time Kernel Density Estimation"
// (ICPP 2017, arXiv:1705.09366).
//
// Import the public API from repro/stkde (estimation) and repro/synth
// (synthetic datasets and the Table 2 benchmark catalog). The command-line
// tools live under cmd/ and the paper's tables and figures are regenerated
// by cmd/stkdebench and the benchmarks in bench_test.go.
package repro
