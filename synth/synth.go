// Package synth provides deterministic synthetic event generators and the
// paper's 21-instance benchmark catalog (Table 2).
//
// The original datasets (Dengue surveillance records, Gnip/Twitter pollen
// tweets, the Influenza Research Database, and eBird) cannot be
// redistributed; these generators reproduce the statistical shapes that
// drive the paper's results — spatial clustering, temporal seasonality, and
// points-per-voxel density. See DESIGN.md for the substitution rationale.
package synth

import (
	"repro/internal/data"
)

// Generator produces a deterministic synthetic event set inside a domain.
type Generator = data.Generator

// The four dataset-shaped generators plus a uniform baseline.
type (
	// Epidemic mimics the Dengue dataset: tight urban clusters, two
	// seasonal waves.
	Epidemic = data.Epidemic
	// SocialMedia mimics the PollenUS dataset: population-center mixture
	// with a single broad season.
	SocialMedia = data.SocialMedia
	// SparseGlobal mimics the Flu dataset: few observations along flyways
	// over a huge domain and time span.
	SparseGlobal = data.SparseGlobal
	// Hotspot mimics the eBird dataset: power-law site popularity, nearly
	// uniform in time.
	Hotspot = data.Hotspot
	// Uniform scatters points uniformly (neutral baseline).
	Uniform = data.Uniform
)

// Instance is a Table 2 benchmark instance at full (paper) size.
type Instance = data.Instance

// Scaled is a runnable instantiation of an Instance at a linear scale.
type Scaled = data.Scaled

// RNG is the deterministic random number generator behind the generators.
type RNG = data.RNG

// NewRNG returns a deterministic generator for the seed.
func NewRNG(seed uint64) *RNG { return data.NewRNG(seed) }

// Catalog returns the 21 Table 2 instances in paper order.
func Catalog() []Instance { return data.Catalog() }

// InstanceByName finds a catalog instance (case-insensitive).
func InstanceByName(name string) (Instance, bool) { return data.InstanceByName(name) }

// GeneratorByName resolves a generator by name ("epidemic", "socialmedia",
// "sparseglobal", "hotspot", "uniform"); nil if unknown.
func GeneratorByName(name string) Generator { return data.ByName(name) }
