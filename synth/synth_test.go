package synth_test

import (
	"fmt"
	"log"
	"testing"

	"repro/stkde"
	"repro/synth"
)

// ExampleCatalog shows how to obtain a runnable version of a Table 2
// benchmark instance.
func ExampleCatalog() {
	inst, ok := synth.InstanceByName("Dengue_Hr-VHb")
	if !ok {
		log.Fatal("instance missing")
	}
	s, err := inst.Scaled(0.25)
	if err != nil {
		log.Fatal(err)
	}
	pts := s.Points()
	fmt.Printf("%s: %d points on a %dx%dx%d grid, Hs=%d Ht=%d\n",
		inst.Name, len(pts), s.Spec.Gx, s.Spec.Gy, s.Spec.Gt, s.Spec.Hs, s.Spec.Ht)
	// Output:
	// Dengue_Hr-VHb: 1000 points on a 74x97x182 grid, Hs=13 Ht=4
}

func TestCatalogComplete(t *testing.T) {
	if len(synth.Catalog()) != 21 {
		t.Fatalf("catalog must list the paper's 21 instances, got %d", len(synth.Catalog()))
	}
}

func TestGeneratorsUsableThroughFacade(t *testing.T) {
	d := stkde.Domain{GX: 100, GY: 100, GT: 50}
	gens := []synth.Generator{
		synth.Epidemic{}, synth.SocialMedia{}, synth.SparseGlobal{},
		synth.Hotspot{}, synth.Uniform{},
	}
	for _, g := range gens {
		pts := g.Generate(100, d, 1)
		if len(pts) != 100 {
			t.Errorf("%s generated %d points", g.Name(), len(pts))
		}
		if synth.GeneratorByName(g.Name()) == nil {
			t.Errorf("GeneratorByName(%q) failed", g.Name())
		}
	}
}

func TestRNGDeterministicFacade(t *testing.T) {
	a, b := synth.NewRNG(5), synth.NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic through facade")
		}
	}
}

// TestEndToEnd runs a catalog instance through the estimator, the workflow
// a benchmark user follows.
func TestEndToEnd(t *testing.T) {
	inst, _ := synth.InstanceByName("PollenUS_Lr-Lb")
	s, err := inst.Scaled(0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stkde.Estimate(stkde.AlgPBSYMPDSCHED, s.Points(), s.Spec, stkde.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid.Sum() <= 0 {
		t.Error("no density computed")
	}
}
