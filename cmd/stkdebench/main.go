// Command stkdebench regenerates the paper's evaluation tables and figures
// on scaled versions of the Table 2 instances.
//
// Usage:
//
//	stkdebench -list
//	stkdebench -exp table3 -scale 0.2
//	stkdebench -exp fig10 -scale 0.15 -maxthreads 16 -instances Dengue_Hr-VHb,PollenUS_Hr-Mb
//	stkdebench -exp all -scale 0.1 -csv results
//	stkdebench -exp kernels -scale 0.1 -repeats 3 -json BENCH
//	stkdebench -experiment stream -scale 0.1 -repeats 3 -json BENCH
//
// The "kernels" experiment A/Bs the compute-engine tiers on sequential
// PB-SYM — the dense pre-rewrite scan, generic interface dispatch, the
// devirtualized scalar span engine (fast-*), and the AVX2 vector kernels
// of repro/internal/simd (vector-*, the default engine) — with and
// without the Morton locality sort; every emitted row carries an "isa"
// field recording whether internal/simd dispatched to "avx2" or "scalar"
// on the measuring host. The "stream" experiment measures the streaming update path: the
// per-event cost and sustained events/sec of folding single events into a
// live core.Updater window, the cost of a one-layer window advance, and
// the speedup over the full batch recompute each ingest replaces. The
// "analytics" experiment measures region-mass and top-k hotspot query
// latency: the naive O(G) grid scans versus the summed-volume pyramid on
// static grids, and the O(G) snapshot path versus the incremental ring
// sketch on live streams. The "recover" experiment measures the durability
// subsystem's boot path: cold WAL replay (events/sec) versus snapshot
// warm-restart recovery of a journaled stream. The "overload" experiment
// drives a server with admission control at roughly 9x its measured
// capacity (one flooding tenant plus three polite ones) and reports the
// admitted p99 against the SLO, the shed counts by reason, Retry-After
// coverage, and the polite tenants' admitted fraction. With -json they
// emit the stkde-bench/v1 trajectories committed as BENCH_stream.json,
// BENCH_analytics.json, BENCH_recover.json and BENCH_overload.json.
// (-experiment is an alias for -exp.)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stkdebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "", "experiment id or \"all\": "+strings.Join(bench.Experiments(), ", ")+" (stream reports events/sec and the speedup of incremental ingest vs full recompute)")
		scale      = flag.Float64("scale", 0.15, "instance scale in (0,1]")
		threads    = flag.String("threads", "", "thread sweep for fig8, e.g. 1,2,4,8,16")
		maxThreads = flag.Int("maxthreads", 0, "P for per-decomposition experiments (0 = min(16, cores))")
		decomps    = flag.String("decomps", "", "decomposition sweep, e.g. 1,2,4,8,16 (k means kxkxk)")
		instances  = flag.String("instances", "", "comma-separated instance filter (default: all 21)")
		budgetMB   = flag.Int64("budget-mb", 0, "memory budget in MB (0 = unlimited)")
		budgetAuto = flag.Bool("budget-auto", false, "use a proportional budget that reproduces the paper's OOMs")
		modeled    = flag.Bool("modeled", false, "model the speedup figures with calibrated single-core rates + schedule simulation (reproduces 16-thread shapes on small hosts)")
		repeats    = flag.Int("repeats", 1, "measured runs per configuration, keeping the fastest")
		csvPrefix  = flag.String("csv", "", "also write <prefix>_<exp>.csv")
		jsonPrefix = flag.String("json", "", "also write <prefix>_<exp>.json (the BENCH_*.json trajectory format)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.StringVar(exp, "experiment", "", "alias for -exp")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Println("  ", e)
		}
		return nil
	}
	if *exp == "" {
		flag.Usage()
		return fmt.Errorf("-exp is required (or -list)")
	}

	cfg := bench.Config{
		Scale:      *scale,
		MaxThreads: *maxThreads,
		Budget:     *budgetMB << 20,
		BudgetAuto: *budgetAuto,
		Modeled:    *modeled,
		Repeats:    *repeats,
		Out:        os.Stdout,
	}
	if *threads != "" {
		ts, err := parseInts(*threads)
		if err != nil {
			return err
		}
		cfg.Threads = ts
	}
	if *decomps != "" {
		ks, err := parseInts(*decomps)
		if err != nil {
			return err
		}
		for _, k := range ks {
			cfg.Decomps = append(cfg.Decomps, [3]int{k, k, k})
		}
	}
	if *instances != "" {
		cfg.Instances = strings.Split(*instances, ",")
	}

	exps := []string{*exp}
	if *exp == "all" {
		exps = bench.Experiments()
	}
	for _, e := range exps {
		rep, err := bench.Run(e, cfg)
		if err != nil {
			return err
		}
		if *csvPrefix != "" {
			name := fmt.Sprintf("%s_%s.csv", *csvPrefix, e)
			if err := writeReport(name, rep, func(f *os.File) error {
				return bench.WriteCSV(f, rep)
			}); err != nil {
				return err
			}
		}
		if *jsonPrefix != "" {
			name := fmt.Sprintf("%s_%s.json", *jsonPrefix, e)
			if err := writeReport(name, rep, func(f *os.File) error {
				return bench.WriteJSON(f, rep, cfg)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeReport creates name, runs write, and reports the row count.
func writeReport(name string, rep *bench.Report, write func(*os.File) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d rows)\n", name, len(rep.Rows))
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
