package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,4,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "a", "1,,2", "1;2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) should fail", bad)
		}
	}
}
