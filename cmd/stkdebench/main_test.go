package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,4,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "a", "1,,2", "1;2"} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) should fail", bad)
		}
	}
}

func TestWriteReportJSON(t *testing.T) {
	rep := &bench.Report{Exp: "kernels", Title: "t", Rows: []bench.Row{
		{Instance: "X", Algo: "pb-sym[fast-sorted]", Seconds: 0.5, Speedup: 2},
	}}
	name := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	err := writeReport(name, rep, func(f *os.File) error {
		return bench.WriteJSON(f, rep, bench.Config{})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stkde-bench/v1", "pb-sym[fast-sorted]", "\"experiment\": \"kernels\""} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trajectory file missing %q:\n%s", want, data)
		}
	}
}
