package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/stkde"
)

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8377" {
		t.Errorf("addr = %q", o.addr)
	}
	if o.cfg.CacheBytes != 256<<20 {
		t.Errorf("cache = %d bytes", o.cfg.CacheBytes)
	}
	if o.cfg.DefaultAlgorithm != stkde.AlgPBSYM {
		t.Errorf("algo = %q", o.cfg.DefaultAlgorithm)
	}
	if o.cfg.Threads != 1 || o.cfg.Workers != 0 {
		t.Errorf("threads/workers = %d/%d", o.cfg.Threads, o.cfg.Workers)
	}
	if len(o.preload) != 0 {
		t.Errorf("preload = %v", o.preload)
	}
}

func TestParseArgsExplicit(t *testing.T) {
	o, err := parseArgs([]string{"-addr", ":9999", "-cache-mb", "64",
		"-workers", "3", "-threads", "2", "-algo", stkde.AlgPBSYMDR,
		"-preload", "a.csv,b.csv", "-drain", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9999" || o.cfg.CacheBytes != 64<<20 || o.cfg.Workers != 3 ||
		o.cfg.Threads != 2 || o.cfg.DefaultAlgorithm != stkde.AlgPBSYMDR {
		t.Errorf("options = %+v", o)
	}
	if len(o.preload) != 2 || o.preload[0] != "a.csv" || o.preload[1] != "b.csv" {
		t.Errorf("preload = %v", o.preload)
	}
	if o.drain != 5*time.Second {
		t.Errorf("drain = %v", o.drain)
	}
}

func TestParseArgsRejectsUnknownAlgorithm(t *testing.T) {
	_, err := parseArgs([]string{"-algo", "quantum"})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, alg := range stkde.Algorithms() {
		if !bytes.Contains([]byte(err.Error()), []byte(alg)) {
			t.Fatalf("error %q does not list %q", err, alg)
		}
	}
}

func TestParseArgsRejectsBadFlags(t *testing.T) {
	if _, err := parseArgs([]string{"-cache-mb", "lots"}); err == nil {
		t.Fatal("bad -cache-mb accepted")
	}
}

// TestHandlerEndToEnd mounts the daemon's handler (as run does) and walks
// the preload-equivalent ingest path plus the health endpoint.
func TestHandlerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "events.csv")
	pts := []stkde.Point{{X: 1, Y: 2, T: 3}, {X: 4, Y: 5, T: 6}}
	f, err := os.Create(csv)
	if err != nil {
		t.Fatal(err)
	}
	if err := stkde.WritePointsCSV(f, pts); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o, err := parseArgs([]string{"-preload", csv})
	if err != nil {
		t.Fatal(err)
	}
	srv := stkde.NewDensityServer(o.cfg)
	for _, name := range o.preload {
		g, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := stkde.ReadPointsCSV(g)
		g.Close()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.AddDataset(loaded); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["datasets"].(float64) != 1 {
		t.Fatalf("healthz = %v", health)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
}
