package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/stkde"
)

func TestParseArgsDefaults(t *testing.T) {
	o, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8377" {
		t.Errorf("addr = %q", o.addr)
	}
	if o.cfg.CacheBytes != 256<<20 {
		t.Errorf("cache = %d bytes", o.cfg.CacheBytes)
	}
	if o.cfg.DefaultAlgorithm != stkde.AlgPBSYM {
		t.Errorf("algo = %q", o.cfg.DefaultAlgorithm)
	}
	if o.cfg.Threads != 1 || o.cfg.Workers != 0 {
		t.Errorf("threads/workers = %d/%d", o.cfg.Threads, o.cfg.Workers)
	}
	if len(o.preload) != 0 {
		t.Errorf("preload = %v", o.preload)
	}
}

func TestParseArgsExplicit(t *testing.T) {
	o, err := parseArgs([]string{"-addr", ":9999", "-cache-mb", "64",
		"-workers", "3", "-threads", "2", "-algo", stkde.AlgPBSYMDR,
		"-preload", "a.csv,b.csv", "-drain", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9999" || o.cfg.CacheBytes != 64<<20 || o.cfg.Workers != 3 ||
		o.cfg.Threads != 2 || o.cfg.DefaultAlgorithm != stkde.AlgPBSYMDR {
		t.Errorf("options = %+v", o)
	}
	if len(o.preload) != 2 || o.preload[0] != "a.csv" || o.preload[1] != "b.csv" {
		t.Errorf("preload = %v", o.preload)
	}
	if o.drain != 5*time.Second {
		t.Errorf("drain = %v", o.drain)
	}
}

func TestParseArgsRejectsUnknownAlgorithm(t *testing.T) {
	_, err := parseArgs([]string{"-algo", "quantum"})
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for _, alg := range stkde.Algorithms() {
		if !bytes.Contains([]byte(err.Error()), []byte(alg)) {
			t.Fatalf("error %q does not list %q", err, alg)
		}
	}
}

func TestParseArgsRejectsBadFlags(t *testing.T) {
	if _, err := parseArgs([]string{"-cache-mb", "lots"}); err == nil {
		t.Fatal("bad -cache-mb accepted")
	}
}

// TestHandlerEndToEnd mounts the daemon's handler (as run does) and walks
// the preload-equivalent ingest path plus the health endpoint.
func TestHandlerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "events.csv")
	pts := []stkde.Point{{X: 1, Y: 2, T: 3}, {X: 4, Y: 5, T: 6}}
	f, err := os.Create(csv)
	if err != nil {
		t.Fatal(err)
	}
	if err := stkde.WritePointsCSV(f, pts); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o, err := parseArgs([]string{"-preload", csv})
	if err != nil {
		t.Fatal(err)
	}
	srv := stkde.NewDensityServer(o.cfg)
	for _, name := range o.preload {
		g, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := stkde.ReadPointsCSV(g)
		g.Close()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.AddDataset(loaded); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["datasets"].(float64) != 1 {
		t.Fatalf("healthz = %v", health)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
}

func TestParseArgsWAL(t *testing.T) {
	o, err := parseArgs([]string{"-wal-dir", "/tmp/w", "-wal-sync", "interval", "-snapshot-every", "128"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.WAL == nil || o.cfg.WAL.Dir != "/tmp/w" || o.cfg.WAL.SnapshotEvery != 128 {
		t.Fatalf("WAL config = %+v", o.cfg.WAL)
	}
	if o.cfg.WAL.Sync.String() != "interval" {
		t.Fatalf("sync policy = %v", o.cfg.WAL.Sync)
	}
	if o, err := parseArgs(nil); err != nil || o.cfg.WAL != nil {
		t.Fatalf("WAL enabled without -wal-dir: %+v (%v)", o.cfg.WAL, err)
	}
	if _, err := parseArgs([]string{"-wal-dir", "/tmp/w", "-wal-sync", "sometimes"}); err == nil {
		t.Fatal("bad -wal-sync accepted")
	}
	if _, err := parseArgs([]string{"-snapshot-every", "5"}); err == nil {
		t.Fatal("-snapshot-every without -wal-dir accepted")
	}
}

func TestParseArgsShardFaults(t *testing.T) {
	o, err := parseArgs([]string{"-shard-rpc-timeout", "2s", "-shard-degraded", "failfast"})
	if err != nil {
		t.Fatal(err)
	}
	if o.shardRPC != 2*time.Second || o.shardPolicy != stkde.ShardGatherFailFast {
		t.Fatalf("shard fault options = rpc %v policy %v", o.shardRPC, o.shardPolicy)
	}
	// Defaults: the dist RPC deadline, partial gathers.
	if o, err := parseArgs(nil); err != nil || o.shardRPC != 30*time.Second || o.shardPolicy != stkde.ShardGatherPartial {
		t.Fatalf("default shard fault options = rpc %v policy %v (%v)", o.shardRPC, o.shardPolicy, err)
	}
	for _, bad := range [][]string{
		{"-shard-rpc-timeout", "0"},
		{"-shard-rpc-timeout", "-1s"},
		{"-shard-degraded", "yolo"},
	} {
		if _, err := parseArgs(bad); err == nil {
			t.Errorf("parseArgs(%v) accepted", bad)
		}
	}
}

func TestParseArgsAdmission(t *testing.T) {
	o, err := parseArgs([]string{"-slo-ms", "2000", "-queue-depth", "256", "-tenant-rate", "50/s,600/m"})
	if err != nil {
		t.Fatal(err)
	}
	adm := o.cfg.Admission
	if adm == nil {
		t.Fatal("admission flags set but Admission config nil")
	}
	if adm.SLO != 2*time.Second || adm.QueueDepth != 256 {
		t.Fatalf("admission = %+v", adm)
	}
	if len(adm.TenantRates) != 2 ||
		adm.TenantRates[0] != (stkde.RateWindow{Limit: 50, Per: time.Second}) ||
		adm.TenantRates[1] != (stkde.RateWindow{Limit: 600, Per: time.Minute}) {
		t.Fatalf("tenant rates = %+v", adm.TenantRates)
	}
	if adm.Machine != nil {
		t.Fatal("Machine must stay nil so the server calibrates at startup")
	}
	// Any single admission flag is enough to build the config.
	if o, err := parseArgs([]string{"-tenant-rate", "5/s"}); err != nil || o.cfg.Admission == nil {
		t.Fatalf("-tenant-rate alone: %+v (%v)", o.cfg.Admission, err)
	}
	// No admission flags leaves the config nil (serve defaults apply).
	if o, err := parseArgs(nil); err != nil || o.cfg.Admission != nil {
		t.Fatalf("Admission set without flags: %+v (%v)", o.cfg.Admission, err)
	}
	for _, bad := range [][]string{
		{"-slo-ms", "-1"},
		{"-queue-depth", "-5"},
		{"-tenant-rate", "fifty/s"},
		{"-tenant-rate", "0/s"},
	} {
		if _, err := parseArgs(bad); err == nil {
			t.Errorf("parseArgs(%v) accepted", bad)
		}
	}
}

func TestEnsureWALDir(t *testing.T) {
	dir := t.TempDir()
	nested := filepath.Join(dir, "a", "b", "wal")
	if err := ensureWALDir(nested); err != nil {
		t.Fatalf("create missing dir: %v", err)
	}
	if fi, err := os.Stat(nested); err != nil || !fi.IsDir() {
		t.Fatalf("dir not created: %v", err)
	}
	// A path under a regular file can never be a writable directory (this
	// also holds for root, unlike permission bits).
	blocker := filepath.Join(dir, "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ensureWALDir(filepath.Join(blocker, "wal")); err == nil {
		t.Fatal("path under a regular file accepted")
	}
}

// TestWALRestartRecoversStreams drives the daemon's own wiring (config,
// Recover before serving) across a simulated crash: a first handler
// ingests into a durable stream and is abandoned, a second handler built
// from the same flags recovers it and answers queries.
func TestWALRestartRecoversStreams(t *testing.T) {
	dir := t.TempDir()
	o, err := parseArgs([]string{"-wal-dir", dir, "-wal-sync", "none"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ensureWALDir(o.cfg.WAL.Dir); err != nil {
		t.Fatal(err)
	}
	boot := func() (*stkde.DensityServer, *httptest.Server) {
		srv := stkde.NewDensityServer(o.cfg)
		if _, err := srv.Recover(); err != nil {
			t.Fatal(err)
		}
		return srv, httptest.NewServer(srv)
	}
	_, ts1 := boot()
	body := `{"sres":2,"tres":1,"hs":6,"ht":3,"domain":{"x0":0,"y0":0,"t0":0,"gx":40,"gy":30,"gt":20}}`
	resp, err := http.Post(ts1.URL+"/v1/streams", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created struct {
		Dataset string `json:"dataset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.Dataset == "" {
		t.Fatalf("create stream: status %d, %+v", resp.StatusCode, created)
	}
	resp, err = http.Post(ts1.URL+"/v1/datasets/"+created.Dataset+"/events", "text/csv",
		strings.NewReader("20,15,10\n21,14,10.5\n19,16,9.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	ts1.Close() // crash: no Shutdown, the journal is simply abandoned

	_, ts2 := boot()
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/query?dataset=" + created.Dataset +
		"&sres=2&tres=1&hs=6&ht=3&x=20&y=15&t=10")
	if err != nil {
		t.Fatal(err)
	}
	var q struct {
		Density float64 `json:"density"`
		Error   string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after restart: status %d: %s", resp.StatusCode, q.Error)
	}
	if q.Density <= 0 {
		t.Fatalf("recovered stream answers density %g, want > 0", q.Density)
	}
}
