// Command stkded is the STKDE density-serving daemon: a long-running HTTP
// service that ingests event sets, estimates density cubes on demand with
// request coalescing and an LRU grid cache, and answers voxel, region and
// hotspot queries.
//
// Usage:
//
//	stkded -addr :8377 -cache-mb 512 -workers 8 -algo pb-sym \
//	       -preload events.csv,more.csv
//
// Shard mode splits live streams across rank daemons. A rank daemon hosts
// a shard endpoint next to its HTTP listener:
//
//	stkded -addr :8378 -shard-listen :9378
//
// and a coordinator daemon names its ranks with -peers; every live stream
// it creates is then carved across them by temporal slab, with region and
// hotspot queries answered by merging the ranks' incremental sketches:
//
//	stkded -addr :8377 -peers hostA:9378,hostB:9378
//
// Peers with the inproc:// scheme are hosted inside the coordinator
// process itself (useful for single-machine sharding and tests):
//
//	stkded -addr :8377 -peers inproc://r0,inproc://r1
//
// Shard fault tolerance: every rank connection runs a health state
// machine (up → suspect → down → reconnecting) driven by background
// heartbeat pings and error streaks, with -shard-rpc-timeout bounding
// each exchange. A down rank degrades — not breaks — the service: region
// and hotspot answers merge the live ranks' sketches and carry
// "coverage" and "degraded" fields (-shard-degraded failfast refuses
// them with the attributed rank error instead), stream mutations commit
// on the coordinator and every live rank (their responses carry the same
// flags), and point queries on the dead rank's temporal slab are refused
// with 503 + Retry-After. When the rank comes back, the coordinator
// verifies the link and rebuilds the rank's slab by deterministic replay
// of the journaled mutation record; answers return to full coverage
// without operator action.
//
// Durability: -wal-dir journals every live-stream mutation (create,
// ingest, advance) to a segmented write-ahead log before it is
// acknowledged, and checkpoints each stream's window every
// -snapshot-every records, so a crashed daemon restarts warm — recovery
// is a snapshot load plus bounded tail replay, finished before the
// listener binds. -wal-sync picks the fsync policy: "always" (every
// acked mutation is durable), "interval" (a background flush every
// 100ms; a crash loses at most that much), or "none" (the OS decides).
// Journals live under <wal-dir>/<stream-id>/ and are inspectable with
// cmd/stkdewal. Sharded streams (-peers) journal here too — the
// coordinator's record is what re-seeds a reconnecting rank and, on a
// coordinator restart, re-creates the stream across the cluster by
// replaying the journal (sharded journals skip checkpoints: the window
// rings live in the rank processes).
//
//	stkded -addr :8377 -wal-dir /var/lib/stkde/wal -wal-sync always
//
// Overload protection: every estimation, ingest and advance is priced at
// the door with the paper's Section 6.5 cost model (calibrated by
// micro-benchmark at startup when -slo-ms is set). -slo-ms names a
// latency objective: requests whose predicted wait (queue ahead of them
// plus their own cost) exceeds it are shed with 429 and a Retry-After
// derived from the prediction, instead of timing out after consuming a
// worker. -queue-depth bounds the admission queue (waiters beyond it are
// shed; cancelled clients leave the queue without consuming a slot), and
// -tenant-rate applies per-tenant sliding-window rate limits — clients
// name themselves with an X-Tenant header, tenants are dequeued
// weighted-fair, and one tenant's flood cannot starve another:
//
//	stkded -addr :8377 -slo-ms 2000 -queue-depth 256 -tenant-rate 50/s,600/m
//
// Endpoints (JSON unless noted):
//
//	POST /v1/datasets    ingest a CSV body (x,y,t); returns the dataset id
//	GET  /v1/datasets    list registered datasets
//	POST /v1/streams     create a live stream dataset (JSON window spec)
//	GET  /v1/streams     list live streams and their window positions
//	POST /v1/datasets/{id}/events   append CSV events to a stream; the
//	                     window grid is updated in place (no recompute)
//	POST /v1/datasets/{id}/advance  slide a stream's window to {"t": ...},
//	                     expiring events the window leaves behind
//	DELETE /v1/datasets/{id}        delete a stream, releasing its pinned
//	                     window grid and every derived cache
//	POST /v1/estimate    start/join an estimation job; poll /v1/jobs/{id}
//	GET  /v1/jobs/{id}   job status, timings, peak and mass when done
//	GET  /v1/query       density at (x,y,t): live stream window, cached
//	                     voxel, or exact fallback
//	GET  /v1/region      probability mass of a voxel box — O(1) from the
//	                     summed-volume pyramid on static grids, and from
//	                     the incremental window sketch on live streams
//	                     (no O(G) snapshot); responses carry "source":
//	                     "sketch", or "grid" for the exact fallback
//	GET  /v1/hotspots    top-k densest voxels, pruned by block maxima on
//	                     both static grids and live windows
//	GET  /healthz        liveness, stream count, cache occupancy, and
//	                     admission state (queue depth, shed counts, a
//	                     degraded flag while actively shedding); in shard
//	                     mode also a "shard" section with per-rank health
//	                     states, down count, and completed heals — a down
//	                     rank marks the whole replica degraded
//	GET  /debug/vars     expvar metrics (cache hits/misses, stream
//	                     ingest/advance counters, sketch_hits /
//	                     sketch_rebuilds, latency p50/p99, admission_*
//	                     admitted/shed/queue-depth/per-tenant counters;
//	                     in shard mode also shard_comm per-rank bytes,
//	                     shard_gathers, shard_gather p50/p99, shard_health
//	                     per-rank states, shard_heals, and
//	                     shard_degraded_mutations)
//
// SIGINT/SIGTERM drain the HTTP listener and in-flight estimations before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/stkde"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stkded:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	addr        string
	cfg         stkde.ServeConfig
	preload     []string
	drain       time.Duration
	shardListen string                  // host a rank endpoint here ("" = none)
	peers       []string                // shard live streams across these rank endpoints
	shardRPC    time.Duration           // per-RPC deadline for shard exchanges
	shardPolicy stkde.ShardGatherPolicy // down-rank gather policy
}

// parseArgs parses the command line into options, kept separate from run
// so tests can exercise flag handling without binding a listener.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("stkded", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8377", "listen address")
		cacheMB  = fs.Int64("cache-mb", 256, "grid cache budget in MB")
		workers  = fs.Int("workers", 0, "concurrent estimations (0 = all cores)")
		threads  = fs.Int("threads", 1, "threads per estimation")
		algo     = fs.String("algo", stkde.AlgPBSYM, "default algorithm: "+strings.Join(stkde.Algorithms(), ", "))
		preload  = fs.String("preload", "", "comma-separated CSV files to ingest at startup")
		drain    = fs.Duration("drain", 30*time.Second, "graceful shutdown deadline")
		shardLn  = fs.String("shard-listen", "", "host a shard rank endpoint at this address (host:port) for other daemons' -peers")
		peers    = fs.String("peers", "", "comma-separated rank endpoints to shard live streams across (host:port, or inproc://name to host the rank in-process)")
		shardRPC = fs.Duration("shard-rpc-timeout", 30*time.Second, "deadline for one shard RPC exchange; a rank that does not answer in time is marked failed and healed in the background")
		shardDeg = fs.String("shard-degraded", "partial", "down-rank gather policy: partial (merge live ranks, report coverage) or failfast (refuse with the attributed rank error)")
		walDir   = fs.String("wal-dir", "", "journal live streams under this directory (created if absent); streams survive a crash via warm restart")
		walSync  = fs.String("wal-sync", "always", "WAL fsync policy: always, interval, or none")
		snapN    = fs.Int("snapshot-every", 0, "checkpoint a stream's window every N journal records (0 = default 4096, negative = only at shutdown)")
		sloMS    = fs.Int("slo-ms", 0, "latency SLO in ms: shed requests whose model-predicted wait exceeds it with 429 + Retry-After (0 = no SLO shedding)")
		queueN   = fs.Int("queue-depth", 0, "bound the admission queue at this many waiters (0 = default 1024)")
		rates    = fs.String("tenant-rate", "", "per-tenant rate limits, comma-separated limit/interval terms (e.g. 50/s,600/m,10000/h); tenants are named by the X-Tenant header")
	)
	if err := fs.Parse(args); err != nil {
		return options{}, err // includes flag.ErrHelp; run maps it to exit 0
	}
	if !stkde.ValidAlgorithm(*algo) {
		return options{}, fmt.Errorf("unknown algorithm %q; valid algorithms: %s",
			*algo, strings.Join(stkde.Algorithms(), ", "))
	}
	o := options{
		addr: *addr,
		cfg: stkde.ServeConfig{
			CacheBytes:       *cacheMB << 20,
			Workers:          *workers,
			Threads:          *threads,
			DefaultAlgorithm: *algo,
		},
		drain:       *drain,
		shardListen: *shardLn,
	}
	if *shardRPC <= 0 {
		return options{}, fmt.Errorf("-shard-rpc-timeout must be > 0")
	}
	o.shardRPC = *shardRPC
	policy, err := stkde.ParseShardGatherPolicy(*shardDeg)
	if err != nil {
		return options{}, fmt.Errorf("-shard-degraded: %w", err)
	}
	o.shardPolicy = policy
	if *sloMS < 0 {
		return options{}, fmt.Errorf("-slo-ms must be >= 0")
	}
	if *queueN < 0 {
		return options{}, fmt.Errorf("-queue-depth must be >= 0")
	}
	if *sloMS > 0 || *queueN > 0 || *rates != "" {
		windows, err := stkde.ParseTenantRates(*rates)
		if err != nil {
			return options{}, fmt.Errorf("-tenant-rate: %w", err)
		}
		// Machine is left nil: when an SLO is set the server calibrates
		// the cost model by micro-benchmark at startup.
		o.cfg.Admission = &stkde.AdmissionServeConfig{
			SLO:         time.Duration(*sloMS) * time.Millisecond,
			QueueDepth:  *queueN,
			TenantRates: windows,
		}
	}
	if *walDir != "" {
		policy, err := stkde.ParseWALSyncPolicy(*walSync)
		if err != nil {
			return options{}, err
		}
		o.cfg.WAL = &stkde.WALServeConfig{
			Dir:           *walDir,
			Sync:          policy,
			SnapshotEvery: *snapN,
		}
	} else if *snapN != 0 {
		return options{}, fmt.Errorf("-snapshot-every needs -wal-dir")
	}
	if *preload != "" {
		o.preload = strings.Split(*preload, ",")
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				return options{}, fmt.Errorf("-peers has an empty endpoint")
			}
			o.peers = append(o.peers, p)
		}
	}
	return o, nil
}

// ensureWALDir creates the journal root if absent and proves it is
// writable with a probe file, so a mis-pointed -wal-dir fails at startup
// with a clear error instead of failing the first stream create at
// request time.
func ensureWALDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("-wal-dir %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".stkded-probe-*")
	if err != nil {
		return fmt.Errorf("-wal-dir %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	os.Remove(name)
	return nil
}

func run(args []string) error {
	o, err := parseArgs(args)
	if errors.Is(err, flag.ErrHelp) {
		return nil // -h: usage already printed, exit 0
	}
	if err != nil {
		return err
	}
	// Shard setup: host a rank endpoint when asked, auto-host inproc://
	// peers inside this process, and hand the serving subsystem its
	// cluster configuration (it dials the peers on first stream creation).
	var shardRanks []*stkde.ShardRank
	if o.shardListen != "" || len(o.peers) > 0 {
		shardNet := stkde.NewShardNetwork()
		rankOpt := stkde.ShardRankOptions{Local: stkde.Options{Threads: o.cfg.Threads}}
		host := func(addr string) error {
			r, err := stkde.ListenShardRank(shardNet, addr, rankOpt)
			if err != nil {
				return err
			}
			shardRanks = append(shardRanks, r)
			fmt.Printf("shard rank  %s\n", r.Addr())
			return nil
		}
		if o.shardListen != "" {
			if err := host(o.shardListen); err != nil {
				return err
			}
		}
		for _, p := range o.peers {
			if strings.HasPrefix(p, "inproc://") {
				if err := host(p); err != nil {
					return err
				}
			}
		}
		defer func() {
			for _, r := range shardRanks {
				r.Close()
			}
		}()
		if len(o.peers) > 0 {
			o.cfg.Shard = &stkde.ShardServeConfig{
				Peers:    o.peers,
				Network:  shardNet,
				Timeouts: stkde.ShardTimeouts{RPC: o.shardRPC},
				Policy:   o.shardPolicy,
			}
			fmt.Printf("sharding    streams across %d rank(s) (rpc timeout %s, degraded policy %s)\n",
				len(o.peers), o.shardRPC, o.shardPolicy)
		}
	}

	if o.cfg.WAL != nil {
		if err := ensureWALDir(o.cfg.WAL.Dir); err != nil {
			return err
		}
	}
	srv := stkde.NewDensityServer(o.cfg)
	// Recover journaled streams before the listener binds: no request can
	// observe a half-rebuilt table, and a corrupt journal refuses startup
	// loudly instead of serving silently shortened history.
	if o.cfg.WAL != nil {
		stats, err := srv.Recover()
		if err != nil {
			return err
		}
		if stats.Streams > 0 || stats.Tombstones > 0 {
			fmt.Printf("recovered   %d stream(s) (%d warm from snapshots, %d records replayed, %d events live)\n",
				stats.Streams, stats.Snapshots, stats.Replayed, stats.Events)
		}
		fmt.Printf("wal         %s (sync %s)\n", o.cfg.WAL.Dir, o.cfg.WAL.Sync)
	}
	for _, name := range o.preload {
		name = strings.TrimSpace(name)
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		pts, err := stkde.ReadPointsCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		id, err := srv.AddDataset(pts)
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		fmt.Printf("preloaded   %s as %s (%d events)\n", name, id, len(pts))
	}

	httpSrv := &http.Server{Addr: o.addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	fmt.Printf("engine      %s fill kernels\n", stkde.EngineISA())
	fmt.Printf("listening   %s (cache %d MB, %s default)\n",
		o.addr, o.cfg.CacheBytes>>20, o.cfg.DefaultAlgorithm)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down: draining requests and in-flight estimations")
	dctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		return err
	}
	return srv.Shutdown(dctx)
}
