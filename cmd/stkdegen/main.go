// Command stkdegen generates synthetic space-time event sets: either a raw
// generator over a custom domain, or one of the paper's 21 Table 2
// benchmark instances at a chosen scale.
//
// Usage:
//
//	stkdegen -gen epidemic -n 10000 -domain 0,0,0,1000,800,365 -out events.csv
//	stkdegen -instance Dengue_Hr-VHb -scale 0.25 -out dengue.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/stkde"
	"repro/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stkdegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gen      = flag.String("gen", "", "generator: epidemic, socialmedia, sparseglobal, hotspot, uniform")
		n        = flag.Int("n", 10000, "number of events (with -gen)")
		domain   = flag.String("domain", "0,0,0,1000,1000,365", "domain as x0,y0,t0,gx,gy,gt (with -gen)")
		instance = flag.String("instance", "", "Table 2 instance name (e.g. Dengue_Hr-VHb)")
		scale    = flag.Float64("scale", 0.25, "instance scale in (0,1] (with -instance)")
		seed     = flag.Uint64("seed", 1, "random seed (with -gen)")
		out      = flag.String("out", "", "output CSV (default stdout)")
		list     = flag.Bool("list", false, "list catalog instances and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-20s %-10s %12s %-16s %4s %4s\n", "Instance", "Dataset", "n", "grid", "Hs", "Ht")
		for _, inst := range synth.Catalog() {
			fmt.Printf("%-20s %-10s %12d %-16s %4d %4d\n", inst.Name, inst.Dataset,
				inst.N, fmt.Sprintf("%dx%dx%d", inst.Gx, inst.Gy, inst.Gt), inst.Hs, inst.Ht)
		}
		return nil
	}

	var pts []stkde.Point
	switch {
	case *instance != "":
		inst, ok := synth.InstanceByName(*instance)
		if !ok {
			return fmt.Errorf("unknown instance %q (try -list)", *instance)
		}
		s, err := inst.Scaled(*scale)
		if err != nil {
			return err
		}
		pts = s.Points()
		fmt.Fprintf(os.Stderr, "instance %s at scale %g: %d events, grid %dx%dx%d, Hs=%d Ht=%d\n",
			inst.Name, *scale, len(pts), s.Spec.Gx, s.Spec.Gy, s.Spec.Gt, s.Spec.Hs, s.Spec.Ht)
	case *gen != "":
		g := synth.GeneratorByName(*gen)
		if g == nil {
			return fmt.Errorf("unknown generator %q", *gen)
		}
		var d stkde.Domain
		if _, err := fmt.Sscanf(*domain, "%f,%f,%f,%f,%f,%f",
			&d.X0, &d.Y0, &d.T0, &d.GX, &d.GY, &d.GT); err != nil {
			return fmt.Errorf("bad -domain %q: %w", *domain, err)
		}
		pts = g.Generate(*n, d, *seed)
	default:
		flag.Usage()
		return fmt.Errorf("one of -gen or -instance is required")
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return stkde.WritePointsCSV(w, pts)
}
