// Command stkdegen generates synthetic space-time event sets: either a raw
// generator over a custom domain, or one of the paper's 21 Table 2
// benchmark instances at a chosen scale.
//
// Usage:
//
//	stkdegen -gen epidemic -n 10000 -domain 0,0,0,1000,800,365 -out events.csv
//	stkdegen -instance Dengue_Hr-VHb -scale 0.25 -out dengue.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/stkde"
	"repro/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "stkdegen:", err)
		os.Exit(1)
	}
}

// run parses the arguments and writes the generated CSV to stdout (or the
// -out file). It is main minus the process machinery, so tests can drive
// the full flag-parsing and generation path.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("stkdegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gen      = fs.String("gen", "", "generator: epidemic, socialmedia, sparseglobal, hotspot, uniform")
		n        = fs.Int("n", 10000, "number of events (with -gen)")
		domain   = fs.String("domain", "0,0,0,1000,1000,365", "domain as x0,y0,t0,gx,gy,gt (with -gen)")
		instance = fs.String("instance", "", "Table 2 instance name (e.g. Dengue_Hr-VHb)")
		scale    = fs.Float64("scale", 0.25, "instance scale in (0,1] (with -instance)")
		seed     = fs.Uint64("seed", 1, "random seed (with -gen)")
		out      = fs.String("out", "", "output CSV (default stdout)")
		list     = fs.Bool("list", false, "list catalog instances and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return err
	}

	if *list {
		fmt.Fprintf(stdout, "%-20s %-10s %12s %-16s %4s %4s\n", "Instance", "Dataset", "n", "grid", "Hs", "Ht")
		for _, inst := range synth.Catalog() {
			fmt.Fprintf(stdout, "%-20s %-10s %12d %-16s %4d %4d\n", inst.Name, inst.Dataset,
				inst.N, fmt.Sprintf("%dx%dx%d", inst.Gx, inst.Gy, inst.Gt), inst.Hs, inst.Ht)
		}
		return nil
	}

	var pts []stkde.Point
	switch {
	case *instance != "":
		inst, ok := synth.InstanceByName(*instance)
		if !ok {
			return fmt.Errorf("unknown instance %q (try -list)", *instance)
		}
		s, err := inst.Scaled(*scale)
		if err != nil {
			return err
		}
		pts = s.Points()
		fmt.Fprintf(stderr, "instance %s at scale %g: %d events, grid %dx%dx%d, Hs=%d Ht=%d\n",
			inst.Name, *scale, len(pts), s.Spec.Gx, s.Spec.Gy, s.Spec.Gt, s.Spec.Hs, s.Spec.Ht)
	case *gen != "":
		var err error
		if pts, err = generate(*gen, *n, *domain, *seed); err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("one of -gen or -instance is required")
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return stkde.WritePointsCSV(w, pts)
}

// generate runs the named raw generator over the parsed domain.
func generate(genName string, n int, domainSpec string, seed uint64) ([]stkde.Point, error) {
	g := synth.GeneratorByName(genName)
	if g == nil {
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
	d, err := parseDomain(domainSpec)
	if err != nil {
		return nil, err
	}
	return g.Generate(n, d, seed), nil
}

// parseDomain parses an "x0,y0,t0,gx,gy,gt" domain specification.
func parseDomain(s string) (stkde.Domain, error) {
	var d stkde.Domain
	if _, err := fmt.Sscanf(s, "%f,%f,%f,%f,%f,%f",
		&d.X0, &d.Y0, &d.T0, &d.GX, &d.GY, &d.GT); err != nil {
		return d, fmt.Errorf("bad -domain %q: %w", s, err)
	}
	return d, nil
}
