package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/stkde"
)

func TestParseDomain(t *testing.T) {
	d, err := parseDomain("1,2,3,10,20,30")
	if err != nil {
		t.Fatal(err)
	}
	want := stkde.Domain{X0: 1, Y0: 2, T0: 3, GX: 10, GY: 20, GT: 30}
	if d != want {
		t.Fatalf("domain = %+v, want %+v", d, want)
	}
	for _, bad := range []string{"", "1,2,3", "a,b,c,d,e,f"} {
		if _, err := parseDomain(bad); err == nil {
			t.Errorf("parseDomain(%q) should fail", bad)
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	a, err := generate("uniform", 100, "0,0,0,50,50,10", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate("uniform", 100, "0,0,0,50,50,10", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("got %d / %d events, want 100", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := generate("uniform", 100, "0,0,0,50,50,10", 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical events")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("nope", 10, "0,0,0,1,1,1", 1); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := generate("uniform", 10, "garbage", 1); err == nil {
		t.Error("bad domain accepted")
	}
}

// TestRunFlagParsing exercises the full command path: flags are parsed,
// the CSV lands on stdout, and a fixed seed reproduces it byte for byte.
func TestRunFlagParsing(t *testing.T) {
	args := []string{"-gen", "epidemic", "-n", "25", "-domain", "0,0,0,100,100,30", "-seed", "9"}
	var out1, out2, errBuf bytes.Buffer
	if err := run(args, &out1, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out2, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("identical invocations produced different CSV output")
	}
	pts, err := stkde.ReadPointsCSV(bytes.NewReader(out1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 25 {
		t.Fatalf("CSV has %d events, want 25", len(pts))
	}
	dom := stkde.Domain{GX: 100, GY: 100, GT: 30}
	for _, p := range pts {
		if !dom.Contains(p) {
			t.Fatalf("event %+v outside the requested domain", p)
		}
	}
}

func TestRunWritesOutFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "events.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-gen", "uniform", "-n", "10", "-out", out}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Error("-out should leave stdout empty")
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pts, err := stkde.ReadPointsCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("file has %d events, want 10", len(pts))
	}
}

func TestRunInstanceAndList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Dengue") {
		t.Error("-list output missing catalog instances")
	}
	stdout.Reset()
	if err := run([]string{"-instance", "Dengue_Lr-Lb", "-scale", "0.05"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	pts, err := stkde.ReadPointsCSV(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("instance generation produced no events")
	}
	if !strings.Contains(stderr.String(), "Dengue_Lr-Lb") {
		t.Error("summary line missing from stderr")
	}
}

func TestRunErrors(t *testing.T) {
	for _, tc := range [][]string{
		{},                            // neither -gen nor -instance
		{"-gen", "nope"},              // unknown generator
		{"-instance", "NotInCatalog"}, // unknown instance
		{"-badflag"},                  // flag error
	} {
		if err := run(tc, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v) should fail", tc)
		}
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); err != nil {
		t.Fatalf("-h should succeed, got %v", err)
	}
	if !strings.Contains(stderr.String(), "-gen") {
		t.Error("usage text not printed for -h")
	}
}
