package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/wal"
)

// seedJournal writes a small real journal (create + ingests + advance +
// one snapshot) and returns its stream id.
func seedJournal(t *testing.T, root string) string {
	t.Helper()
	const id = "s0000000000000001"
	spec, err := grid.NewSpec(grid.Domain{GX: 8, GY: 6, GT: 5}, 1, 1, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// One big segment: the open segment is never retired, so the snapshot
	// write leaves every record in place for dump to show.
	l, _, err := wal.Open(filepath.Join(root, id), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	appendRec := func(rec wal.Record) uint64 {
		t.Helper()
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		return lsn
	}
	appendRec(wal.Record{Kind: wal.KindCreate, Spec: spec})
	for i := 0; i < 6; i++ {
		appendRec(wal.Record{Kind: wal.KindIngest, Points: []grid.Point{
			{X: float64(i), Y: 1, T: 1}, {X: 2, Y: float64(i % 5), T: 2},
		}})
	}
	lsn := appendRec(wal.Record{Kind: wal.KindAdvance, T: 3.5})
	g, err := grid.NewGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(&wal.Snapshot{LSN: lsn - 2, Grid: g, Live: []grid.Point{{X: 1, Y: 1, T: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return id
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String() + errb.String(), err
}

func TestListDumpVerifyCleanJournal(t *testing.T) {
	root := t.TempDir()
	id := seedJournal(t, root)

	out, err := runCLI(t, "-dir", root, "list")
	if err != nil {
		t.Fatalf("list: %v\n%s", err, out)
	}
	if !strings.Contains(out, id) || !strings.Contains(out, "STREAM") {
		t.Fatalf("list output missing stream row:\n%s", out)
	}

	out, err = runCLI(t, "-dir", root, "-stream", id, "dump")
	if err != nil {
		t.Fatalf("dump: %v\n%s", err, out)
	}
	for _, want := range []string{"create", "ingest", "advance", "2 events", "to t=3.5", "snapshot @ LSN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}

	out, err = runCLI(t, "-dir", root, "verify")
	if err != nil {
		t.Fatalf("verify on a clean journal: %v\n%s", err, out)
	}
	if strings.Contains(out, "DAMAGED") {
		t.Fatalf("verify flagged a clean journal:\n%s", out)
	}
}

func TestVerifyFailsOnDamage(t *testing.T) {
	root := t.TempDir()
	id := seedJournal(t, root)
	segs, err := wal.ListSegments(filepath.Join(root, id))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	// Flip one payload bit in the last segment.
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40
	if err := os.WriteFile(last, b, 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runCLI(t, "-dir", root, "verify")
	if err == nil {
		t.Fatalf("verify passed a corrupt journal:\n%s", out)
	}
	if !strings.Contains(out, "DAMAGED") || !strings.Contains(out, "CRC") {
		t.Fatalf("verify did not name the damage:\n%s", out)
	}
	// dump and list still work, reporting the damage instead of failing.
	out, err = runCLI(t, "-dir", root, "dump")
	if err != nil {
		t.Fatalf("dump on damaged journal: %v", err)
	}
	if !strings.Contains(out, "DAMAGED") {
		t.Fatalf("dump did not flag the damage:\n%s", out)
	}
}

func TestFlagValidation(t *testing.T) {
	if _, err := runCLI(t, "list"); err == nil {
		t.Fatal("missing -dir accepted")
	}
	root := t.TempDir()
	seedJournal(t, root)
	if _, err := runCLI(t, "-dir", root, "explode"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if _, err := runCLI(t, "-dir", root, "-stream", "nope", "list"); err == nil {
		t.Fatal("unknown stream accepted")
	}
	if _, err := runCLI(t, "-dir", root, "list", "dump"); err == nil {
		t.Fatal("two commands accepted")
	}
	if _, err := runCLI(t, "-h"); err != nil {
		t.Fatal("-h should exit clean")
	}
}
