// Command stkdewal inspects the write-ahead logs a stkded daemon keeps
// under -wal-dir: it lists stream journals, dumps their records, and
// verifies every CRC, without ever mutating the files — safe to run
// against a live daemon's directory.
//
// Usage:
//
//	stkdewal -dir /var/lib/stkde/wal list
//	stkdewal -dir /var/lib/stkde/wal -stream s0000000000000001 dump
//	stkdewal -dir /var/lib/stkde/wal verify
//
// Commands:
//
//	list    one line per stream journal: segments, records, snapshot and
//	        journal positions, bytes on disk
//	dump    every record of the selected journals (LSN, kind, payload
//	        summary), then the snapshots
//	verify  CRC-check every segment and snapshot; exits non-zero when any
//	        damage is found (a torn tail, a bit flip, a bad header)
//
// -stream restricts list/dump/verify to one journal; the default is every
// stream under -dir.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "stkdewal:", err)
		os.Exit(1)
	}
}

// run is main minus the process machinery, so tests can drive the full
// flag-parsing and inspection paths against scratch journals.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("stkdewal", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir    = fs.String("dir", "", "WAL root directory (stkded's -wal-dir)")
		stream = fs.String("stream", "", "restrict to one stream id (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage already printed, exit 0
		}
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	cmd := fs.Arg(0)
	if fs.NArg() > 1 {
		return fmt.Errorf("one command at a time, got %v", fs.Args())
	}

	ids, err := selectStreams(*dir, *stream)
	if err != nil {
		return err
	}
	switch cmd {
	case "list", "":
		return runList(*dir, ids, stdout)
	case "dump":
		return runDump(*dir, ids, stdout)
	case "verify":
		return runVerify(*dir, ids, stdout)
	}
	return fmt.Errorf("unknown command %q (valid: list, dump, verify)", cmd)
}

// selectStreams resolves the journals to inspect.
func selectStreams(dir, stream string) ([]string, error) {
	if stream != "" {
		if _, err := os.Stat(filepath.Join(dir, stream)); err != nil {
			return nil, fmt.Errorf("stream %s: %w", stream, err)
		}
		return []string{stream}, nil
	}
	return wal.ListStreams(dir)
}

// journalFiles lists one stream's segments and snapshots.
func journalFiles(dir, id string) (segs, snaps []string, err error) {
	jdir := filepath.Join(dir, id)
	if segs, err = wal.ListSegments(jdir); err != nil {
		return nil, nil, err
	}
	if snaps, err = wal.ListSnapshots(jdir); err != nil {
		return nil, nil, err
	}
	return segs, snaps, nil
}

func runList(dir string, ids []string, stdout io.Writer) error {
	fmt.Fprintf(stdout, "%-18s %8s %8s %12s %12s %10s %s\n",
		"STREAM", "SEGS", "RECORDS", "SNAP-LSN", "LAST-LSN", "BYTES", "DAMAGE")
	for _, id := range ids {
		segs, snaps, err := journalFiles(dir, id)
		if err != nil {
			return err
		}
		var records int
		var bytes int64
		var last uint64
		damage := ""
		for _, path := range segs {
			info, err := wal.InspectSegment(path, nil)
			if err != nil {
				return err
			}
			records += info.Records
			bytes += info.Bytes
			if info.LastLSN > last {
				last = info.LastLSN
			}
			if info.Damage != "" && damage == "" {
				damage = fmt.Sprintf("%s: %s", filepath.Base(info.Path), info.Damage)
			}
		}
		var snapLSN uint64
		for _, path := range snaps {
			if s, err := wal.ReadSnapshot(path); err == nil && s.LSN > snapLSN {
				snapLSN = s.LSN
			}
			if fi, err := os.Stat(path); err == nil {
				bytes += fi.Size()
			}
		}
		if snapLSN > last {
			last = snapLSN
		}
		fmt.Fprintf(stdout, "%-18s %8d %8d %12d %12d %10d %s\n",
			id, len(segs), records, snapLSN, last, bytes, damage)
	}
	return nil
}

func runDump(dir string, ids []string, stdout io.Writer) error {
	for _, id := range ids {
		segs, snaps, err := journalFiles(dir, id)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "stream %s\n", id)
		for _, path := range segs {
			info, err := wal.InspectSegment(path, func(r wal.Record) error {
				fmt.Fprintf(stdout, "  %12d  %-8s %s\n", r.LSN, r.Kind, recordSummary(r))
				return nil
			})
			if err != nil {
				return err
			}
			if info.Damage != "" {
				fmt.Fprintf(stdout, "  %s: DAMAGED after %d bytes: %s\n",
					filepath.Base(path), info.ValidBytes, info.Damage)
			}
		}
		for _, path := range snaps {
			s, err := wal.ReadSnapshot(path)
			if err != nil {
				fmt.Fprintf(stdout, "  %s: UNREADABLE: %v\n", filepath.Base(path), err)
				continue
			}
			sp := s.Grid.Spec
			fmt.Fprintf(stdout, "  snapshot @ LSN %d: %dx%dx%d window (OT %d), %d live events\n",
				s.LSN, sp.Gx, sp.Gy, sp.Gt, sp.OT, len(s.Live))
		}
	}
	return nil
}

// recordSummary renders a record's payload in one line.
func recordSummary(r wal.Record) string {
	switch r.Kind {
	case wal.KindCreate:
		sp := r.Spec
		return fmt.Sprintf("grid %dx%dx%d, hs=%g ht=%g", sp.Gx, sp.Gy, sp.Gt, sp.HS, sp.HT)
	case wal.KindIngest:
		return fmt.Sprintf("%d events", len(r.Points))
	case wal.KindAdvance:
		return fmt.Sprintf("to t=%g", r.T)
	}
	return ""
}

func runVerify(dir string, ids []string, stdout io.Writer) error {
	damaged := 0
	for _, id := range ids {
		segs, snaps, err := journalFiles(dir, id)
		if err != nil {
			return err
		}
		for _, path := range segs {
			info, err := wal.InspectSegment(path, nil)
			if err != nil {
				return err
			}
			if info.Damage != "" {
				damaged++
				fmt.Fprintf(stdout, "DAMAGED %s/%s: %s (%d of %d bytes intact)\n",
					id, filepath.Base(path), info.Damage, info.ValidBytes, info.Bytes)
				continue
			}
			fmt.Fprintf(stdout, "ok      %s/%s: %d records, LSN %d..%d\n",
				id, filepath.Base(path), info.Records, info.FirstLSN, info.LastLSN)
		}
		for _, path := range snaps {
			s, err := wal.ReadSnapshot(path)
			if err != nil {
				damaged++
				fmt.Fprintf(stdout, "DAMAGED %s/%s: %v\n", id, filepath.Base(path), err)
				continue
			}
			fmt.Fprintf(stdout, "ok      %s/%s: snapshot @ LSN %d\n", id, filepath.Base(path), s.LSN)
		}
	}
	if damaged > 0 {
		return fmt.Errorf("%d damaged file(s)", damaged)
	}
	return nil
}
