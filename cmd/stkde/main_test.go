package main

import (
	"math"
	"strings"
	"testing"

	"repro/stkde"
)

func TestParseDecomp(t *testing.T) {
	d, err := parseDecomp("8x4x2")
	if err != nil || d != [3]int{8, 4, 2} {
		t.Fatalf("parseDecomp = %v, %v", d, err)
	}
	if d, err := parseDecomp("16X16X16"); err != nil || d != [3]int{16, 16, 16} {
		t.Fatalf("case-insensitive parse failed: %v, %v", d, err)
	}
	for _, bad := range []string{"", "8", "8x4", "axbxc", "8,4,2"} {
		if _, err := parseDecomp(bad); err == nil {
			t.Errorf("parseDecomp(%q) should fail", bad)
		}
	}
}

func TestResolveDomainExplicit(t *testing.T) {
	d, err := resolveDomain("1,2,3,10,20,30", nil, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := stkde.Domain{X0: 1, Y0: 2, T0: 3, GX: 10, GY: 20, GT: 30}
	if d != want {
		t.Fatalf("domain = %+v, want %+v", d, want)
	}
	if _, err := resolveDomain("1,2,3", nil, 5, 5); err == nil {
		t.Error("short domain spec should fail")
	}
}

func TestResolveDomainFromPoints(t *testing.T) {
	pts := []stkde.Point{
		{X: 10, Y: 100, T: 5},
		{X: 30, Y: 150, T: 8},
	}
	d, err := resolveDomain("", pts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bounding box padded by the bandwidths.
	if math.Abs(d.X0-8) > 1e-9 || math.Abs(d.Y0-98) > 1e-9 || math.Abs(d.T0-4) > 1e-9 {
		t.Errorf("origin = (%g,%g,%g)", d.X0, d.Y0, d.T0)
	}
	if d.GX < 24 || d.GY < 54 || d.GT < 5 {
		t.Errorf("extents too small: %+v", d)
	}
	// Every point strictly inside.
	for _, p := range pts {
		if !d.Contains(p) {
			t.Errorf("point %+v outside derived domain %+v", p, d)
		}
	}
}

func TestValidateAlgorithm(t *testing.T) {
	for _, alg := range stkde.Algorithms() {
		if err := validateAlgorithm(alg); err != nil {
			t.Errorf("valid algorithm %q rejected: %v", alg, err)
		}
	}
	err := validateAlgorithm("quantum")
	if err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// The error teaches the caller: every valid name plus a usage hint.
	for _, alg := range stkde.Algorithms() {
		if !strings.Contains(err.Error(), alg) {
			t.Errorf("error does not list %q:\n%s", alg, err)
		}
	}
	for _, hint := range []string{"-algo", "-auto"} {
		if !strings.Contains(err.Error(), hint) {
			t.Errorf("error missing usage hint %q:\n%s", hint, err)
		}
	}
}
