// Command stkde computes a space-time kernel density estimate from a CSV of
// events and writes the resulting density volume in one or more formats.
//
// Usage:
//
//	stkde -in events.csv -hs 500 -ht 7 -sres 50 -tres 1 \
//	      -algo pb-sym-pd-sched -threads 8 \
//	      -out density.bin -vtk density.vtk -png heat -png-slices 4
//
// The domain defaults to the bounding box of the input events (with a
// bandwidth margin); pass -domain to fix it explicitly.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/stkde"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stkde:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input CSV of events (x,y,t); required")
		algo      = flag.String("algo", stkde.AlgPBSYM, "algorithm: "+strings.Join(stkde.Algorithms(), ", "))
		auto      = flag.Bool("auto", false, "pick the algorithm with the parametric performance model")
		ranks     = flag.Int("ranks", 0, "simulate a distributed-memory run on this many ranks (0 = shared-memory); -algo selects the per-rank strategy")
		threads   = flag.Int("threads", 0, "worker threads (0 = all cores; with -ranks, threads per rank, 0 = 1)")
		decomp    = flag.String("decomp", "", "subdomain decomposition AxBxC (e.g. 8x8x8)")
		sres      = flag.Float64("sres", 1, "spatial resolution (domain units per voxel)")
		tres      = flag.Float64("tres", 1, "temporal resolution (domain units per voxel)")
		hs        = flag.Float64("hs", 0, "spatial bandwidth (required)")
		ht        = flag.Float64("ht", 0, "temporal bandwidth (required)")
		domain    = flag.String("domain", "", "domain as x0,y0,t0,gx,gy,gt (default: bounding box of events + bandwidth)")
		budgetMB  = flag.Int64("budget-mb", 0, "memory budget in MB (0 = unlimited)")
		kernelS   = flag.String("kernel-s", "", "spatial kernel (default epanechnikov2d)")
		kernelT   = flag.String("kernel-t", "", "temporal kernel (default epanechnikov1d)")
		out       = flag.String("out", "", "write binary grid snapshot to this file")
		vtk       = flag.String("vtk", "", "write VTK structured-points file")
		pngPrefix = flag.String("png", "", "write PNG heatmap slices named <prefix>_t<T>.png")
		pngSlices = flag.Int("png-slices", 4, "number of evenly spaced PNG slices")
	)
	flag.Parse()
	if *in == "" || *hs <= 0 || *ht <= 0 {
		flag.Usage()
		return fmt.Errorf("-in, -hs and -ht are required")
	}
	if !*auto {
		if err := validateAlgorithm(*algo); err != nil {
			return err
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	pts, err := stkde.ReadPointsCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(pts) == 0 {
		return fmt.Errorf("no events in %s", *in)
	}

	dom, err := resolveDomain(*domain, pts, *hs, *ht)
	if err != nil {
		return err
	}
	spec, err := stkde.NewSpec(dom, *sres, *tres, *hs, *ht)
	if err != nil {
		return err
	}

	opt := stkde.Options{Threads: *threads}
	if *decomp != "" {
		if opt.Decomp, err = parseDecomp(*decomp); err != nil {
			return err
		}
	}
	if *budgetMB > 0 {
		opt.Budget = stkde.NewBudget(*budgetMB << 20)
	}
	if opt.Spatial = stkde.SpatialKernelByName(*kernelS); opt.Spatial == nil {
		return fmt.Errorf("unknown spatial kernel %q", *kernelS)
	}
	if opt.Temporal = stkde.TemporalKernelByName(*kernelT); opt.Temporal == nil {
		return fmt.Errorf("unknown temporal kernel %q", *kernelT)
	}

	var g *stkde.Grid
	switch {
	case *ranks > 0:
		if *auto {
			return fmt.Errorf("-auto and -ranks are mutually exclusive")
		}
		res, err := stkde.EstimateDistributed(pts, spec, stkde.DistOptions{
			Ranks: *ranks, Algorithm: *algo, Local: opt,
		})
		if err != nil {
			return err
		}
		g = res.Grid
		st := res.Stats
		fmt.Printf("algorithm   %s on %d simulated ranks (temporal slabs)\n", res.Algorithm, st.Ranks)
		printProblem(spec, len(pts))
		fmt.Printf("messages    %d (%.2f MB scattered, %.2f MB gathered)\n",
			st.Messages, float64(st.ScatterBytes)/1e6, float64(st.GatherBytes)/1e6)
		fmt.Printf("halo        %d replicated points, imbalance %.2f\n",
			st.ReplicatedPts, st.Imbalance)
	case *auto:
		res, err := stkde.AutoEstimate(pts, spec, opt)
		if err != nil {
			return err
		}
		g = res.Grid
		printSharedMemory(res, spec, len(pts))
	default:
		res, err := stkde.Estimate(*algo, pts, spec, opt)
		if err != nil {
			return err
		}
		g = res.Grid
		printSharedMemory(res, spec, len(pts))
	}

	maxV, X, Y, T := g.Max()
	fmt.Printf("peak        %.6g at voxel (%d,%d,%d) = (%.6g, %.6g, %.6g)\n",
		maxV, X, Y, T, spec.CenterX(X), spec.CenterY(Y), spec.CenterT(T))
	fmt.Printf("mass        %.4f\n", g.Sum()*spec.SRes*spec.SRes*spec.TRes)

	if *out != "" {
		if err := writeFile(*out, func(f *os.File) error {
			return stkde.WriteGridSnapshot(f, g)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote       %s\n", *out)
	}
	if *vtk != "" {
		if err := writeFile(*vtk, func(f *os.File) error {
			return stkde.WriteVTK(f, g, "stkde density")
		}); err != nil {
			return err
		}
		fmt.Printf("wrote       %s\n", *vtk)
	}
	if *pngPrefix != "" {
		n := *pngSlices
		if n < 1 {
			n = 1
		}
		globalMax, _, _, _ := g.Max()
		for i := 0; i < n; i++ {
			T := (2*i + 1) * spec.Gt / (2 * n)
			name := fmt.Sprintf("%s_t%04d.png", *pngPrefix, T)
			if err := writeFile(name, func(f *os.File) error {
				return stkde.WritePNGSlice(f, g, T, globalMax, 0.5)
			}); err != nil {
				return err
			}
			fmt.Printf("wrote       %s\n", name)
		}
	}
	return nil
}

// printProblem reports the problem shape shared by every run mode.
func printProblem(spec stkde.Spec, n int) {
	fmt.Printf("events      %d\n", n)
	fmt.Printf("grid        %dx%dx%d voxels (%.1f MB)\n",
		spec.Gx, spec.Gy, spec.Gt, float64(spec.Bytes())/1e6)
	fmt.Printf("bandwidth   Hs=%d Ht=%d voxels\n", spec.Hs, spec.Ht)
	fmt.Printf("engine      %s fill kernels\n", stkde.EngineISA())
}

// printSharedMemory reports a shared-memory run: algorithm, problem shape
// and the per-phase wall-clock breakdown.
func printSharedMemory(res *stkde.Result, spec stkde.Spec, n int) {
	fmt.Printf("algorithm   %s\n", res.Algorithm)
	printProblem(spec, n)
	fmt.Printf("phases      init=%v bin=%v plan=%v compute=%v reduce=%v (total %v)\n",
		res.Phases.Init, res.Phases.Bin, res.Phases.Plan, res.Phases.Compute,
		res.Phases.Reduce, res.Phases.Total())
}

func resolveDomain(spec string, pts []stkde.Point, hs, ht float64) (stkde.Domain, error) {
	if spec != "" {
		var d stkde.Domain
		if _, err := fmt.Sscanf(spec, "%f,%f,%f,%f,%f,%f",
			&d.X0, &d.Y0, &d.T0, &d.GX, &d.GY, &d.GT); err != nil {
			return d, fmt.Errorf("bad -domain %q: %w", spec, err)
		}
		return d, nil
	}
	minX, minY, minT := math.Inf(1), math.Inf(1), math.Inf(1)
	maxX, maxY, maxT := math.Inf(-1), math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		minT, maxT = math.Min(minT, p.T), math.Max(maxT, p.T)
	}
	return stkde.Domain{
		X0: minX - hs, Y0: minY - hs, T0: minT - ht,
		GX: maxX - minX + 2*hs + 1e-9,
		GY: maxY - minY + 2*hs + 1e-9,
		GT: maxT - minT + 2*ht + 1e-9,
	}, nil
}

// validateAlgorithm rejects unknown algorithm names up front, before any
// input is read, listing the valid names and how to proceed.
func validateAlgorithm(name string) error {
	if stkde.ValidAlgorithm(name) {
		return nil
	}
	return fmt.Errorf("unknown algorithm %q\nvalid algorithms:\n  %s\nusage: pass -algo with one of the names above, or -auto to let the performance model choose",
		name, strings.Join(stkde.Algorithms(), "\n  "))
}

func parseDecomp(s string) ([3]int, error) {
	var d [3]int
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%dx%d", &d[0], &d[1], &d[2]); err != nil {
		return d, fmt.Errorf("bad -decomp %q (want AxBxC): %w", s, err)
	}
	return d, nil
}

func writeFile(name string, fn func(*os.File) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
