// Socialmedia compares every parallel strategy on a PollenUS-style
// workload: hundreds of thousands of geolocated posts on a moderate grid,
// the compute-bound regime where the paper's scheduling machinery matters
// most (Sections 4-6).
//
// Run with: go run ./examples/socialmedia
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/stkde"
	"repro/synth"
)

func main() {
	// Continental-scale domain in degrees-and-days (0.1 deg resolution),
	// one pollen season.
	domain := stkde.Domain{X0: -125, Y0: 25, T0: 0, GX: 58, GY: 24, GT: 90}
	posts := synth.SocialMedia{}.Generate(60000, domain, 2016)

	spec, err := stkde.NewSpec(domain, 0.1, 1, 1.5, 7) // hs=1.5 deg, ht=7 days
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d posts, grid %dx%dx%d, Hs=%d Ht=%d voxels\n",
		len(posts), spec.Gx, spec.Gy, spec.Gt, spec.Hs, spec.Ht)

	threads := runtime.GOMAXPROCS(0)
	fmt.Printf("running every strategy with %d threads\n\n", threads)

	baseline, err := stkde.Estimate(stkde.AlgPBSYM, posts, spec, stkde.Options{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	base := baseline.Phases.Total()
	fmt.Printf("%-22s %12v  (sequential baseline)\n", stkde.AlgPBSYM, base)

	ref := baseline.Grid
	for _, alg := range stkde.ParallelAlgorithms() {
		res, err := stkde.Estimate(alg, posts, spec, stkde.Options{
			Threads: threads,
			Decomp:  [3]int{8, 8, 8},
		})
		if err != nil {
			log.Fatal(err)
		}
		// All strategies compute the same density field.
		var worst float64
		for i := range ref.Data {
			if d := abs(ref.Data[i] - res.Grid.Data[i]); d > worst {
				worst = d
			}
		}
		fmt.Printf("%-22s %12v  speedup %.2fx  (max |diff| vs baseline %.2g)\n",
			alg, res.Phases.Total(), base.Seconds()/res.Phases.Total().Seconds(), worst)
		if res.Stats.CriticalPathRel > 0 {
			fmt.Printf("%22s critical path %.1f%% of total work, %d colors, %d cells\n",
				"", res.Stats.CriticalPathRel*100, res.Stats.Colors, res.Stats.Cells)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
