// Quickstart: the smallest end-to-end use of the stkde public API.
//
// It generates a synthetic outbreak, computes the space-time kernel density
// estimate with the default algorithm, and reports where and when the
// density peaks.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/stkde"
	"repro/synth"
)

func main() {
	// A city-sized domain: 10 km x 8 km, one year, in meters and days.
	domain := stkde.Domain{GX: 10000, GY: 8000, GT: 365}

	// Synthetic disease cases (deterministic for a fixed seed).
	events := synth.Epidemic{}.Generate(5000, domain, 42)

	// Discretize at 100 m / 1 day, with 500 m and 7 day bandwidths.
	spec, err := stkde.NewSpec(domain, 100, 1, 500, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %dx%dx%d voxels, bandwidths Hs=%d Ht=%d\n",
		spec.Gx, spec.Gy, spec.Gt, spec.Hs, spec.Ht)

	// Estimate. The zero Options use every core and the paper's kernels;
	// PB-SYM is the fast sequential algorithm of Section 3.
	res, err := stkde.Estimate(stkde.AlgPBSYM, events, spec, stkde.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed in %v (init %v, compute %v)\n",
		res.Phases.Total(), res.Phases.Init, res.Phases.Compute)

	// Where is the hottest space-time location?
	v, X, Y, T := res.Grid.Max()
	fmt.Printf("peak density %.3g at (%.0f m, %.0f m) on day %.0f\n",
		v, spec.CenterX(X), spec.CenterY(Y), spec.CenterT(T))

	// The estimate is a proper density: it integrates to ~1.
	mass := res.Grid.Sum() * spec.SRes * spec.SRes * spec.TRes
	fmt.Printf("total mass: %.3f (1.0 = perfect; boundary effects shave a little)\n", mass)

	// The same result, computed in parallel with the scheduled point
	// decomposition (Section 5) — identical densities, less wall-clock on
	// multicore machines.
	par, err := stkde.Estimate(stkde.AlgPBSYMPDSCHED, events, spec, stkde.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel run (%d threads): %v\n", par.Stats.Threads, par.Phases.Total())
}
