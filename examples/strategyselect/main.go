// Strategyselect demonstrates the parametric performance model the paper's
// conclusion asks for (Section 6.5): predict each strategy's runtime and
// memory from the instance parameters, pick the best feasible one, and
// validate the prediction against actual measurements.
//
// Run with: go run ./examples/strategyselect
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/stkde"
	"repro/synth"
)

func main() {
	threads := runtime.GOMAXPROCS(0)

	scenarios := []struct {
		name string
		pts  []stkde.Point
		spec stkde.Spec
	}{
		{name: "clustered epidemic (imbalanced)"},
		{name: "sparse global surveillance (init-bound)"},
		{name: "dense hotspots (compute-bound)"},
	}

	// Scenario 1: clustered epidemic.
	d1 := stkde.Domain{GX: 200, GY: 200, GT: 120}
	spec1, err := stkde.NewSpec(d1, 1, 1, 6, 4)
	if err != nil {
		log.Fatal(err)
	}
	scenarios[0].pts = synth.Epidemic{Clusters: 4}.Generate(40000, d1, 7)
	scenarios[0].spec = spec1

	// Scenario 2: sparse global.
	d2 := stkde.Domain{GX: 250, GY: 200, GT: 400}
	spec2, err := stkde.NewSpec(d2, 1, 1, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	scenarios[1].pts = synth.SparseGlobal{}.Generate(4000, d2, 8)
	scenarios[1].spec = spec2

	// Scenario 3: dense hotspots.
	d3 := stkde.Domain{GX: 150, GY: 120, GT: 90}
	spec3, err := stkde.NewSpec(d3, 1, 1, 5, 4)
	if err != nil {
		log.Fatal(err)
	}
	scenarios[2].pts = synth.Hotspot{}.Generate(120000, d3, 9)
	scenarios[2].spec = spec3

	for _, sc := range scenarios {
		fmt.Printf("=== %s ===\n", sc.name)
		fmt.Printf("n=%d, grid %dx%dx%d (%.0f MB)\n", len(sc.pts),
			sc.spec.Gx, sc.spec.Gy, sc.spec.Gt, float64(sc.spec.Bytes())/1e6)

		preds := stkde.PredictStrategies(sc.pts, sc.spec, threads, 0)
		fmt.Println("model predictions (fastest first):")
		for _, p := range preds {
			mark := " "
			if !p.Feasible {
				mark = "x"
			}
			fmt.Printf("  %s %-22s %8.4fs  %6.0f MB\n", mark, p.Algorithm,
				p.Seconds, float64(p.Bytes)/1e6)
		}

		// Run the model's pick and two alternatives; report measured times.
		auto, err := stkde.AutoEstimate(sc.pts, sc.spec, stkde.Options{Threads: threads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model picked %s: measured %v\n", auto.Algorithm, auto.Phases.Total())
		for _, alg := range []string{stkde.AlgPBSYM, stkde.AlgPBSYMDR, stkde.AlgPBSYMPDSCHED} {
			if alg == auto.Algorithm {
				continue
			}
			res, err := stkde.Estimate(alg, sc.pts, sc.spec, stkde.Options{Threads: threads})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  alternative %-22s measured %v\n", alg, res.Phases.Total())
		}
		fmt.Println()
	}
}
