// Epidemic visualizes a Dengue-style outbreak the way the paper's Figure 1
// does: the same events rendered under a wide and a narrow bandwidth, as
// PNG heatmap slices, plus a VTK volume for 3-D exploration.
//
// Run with: go run ./examples/epidemic
// Outputs epidemic_*.png and epidemic.vtk in the working directory.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/stkde"
	"repro/synth"
)

func main() {
	// Cali-like city: ~12 x 12 km, two years of daily reports.
	domain := stkde.Domain{GX: 12000, GY: 12000, GT: 730}
	cases := synth.Epidemic{Clusters: 30, Waves: 3}.Generate(11056, domain, 2010)
	fmt.Printf("%d dengue-like cases over %d days\n", len(cases), int(domain.GT))

	// Figure 1a: hs = 2500 m, ht = 14 days — broad, smooth hotspots.
	// Figure 1b: hs = 500 m, ht = 7 days — tight, street-level clusters.
	configs := []struct {
		tag    string
		hs, ht float64
	}{
		{"wide", 2500, 14},
		{"narrow", 500, 7},
	}
	for _, cfg := range configs {
		spec, err := stkde.NewSpec(domain, 100, 2, cfg.hs, cfg.ht)
		if err != nil {
			log.Fatal(err)
		}
		res, err := stkde.Estimate(stkde.AlgPBSYMPDSCHED, cases, spec, stkde.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s bandwidth (hs=%.0fm ht=%.0fd): grid %dx%dx%d computed in %v\n",
			cfg.tag, cfg.hs, cfg.ht, spec.Gx, spec.Gy, spec.Gt, res.Phases.Total())

		// Render three days spread across the first outbreak wave.
		max, _, _, _ := res.Grid.Max()
		for _, day := range []int{60, 120, 180} {
			T := int(float64(day) / spec.TRes)
			if T >= spec.Gt {
				continue
			}
			name := fmt.Sprintf("epidemic_%s_day%03d.png", cfg.tag, day)
			if err := writeFile(name, func(f *os.File) error {
				return stkde.WritePNGSlice(f, res.Grid, T, max, 0.5)
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Println("  wrote", name)
		}

		if cfg.tag == "narrow" {
			if err := writeFile("epidemic.vtk", func(f *os.File) error {
				return stkde.WriteVTK(f, res.Grid, "dengue-like outbreak")
			}); err != nil {
				log.Fatal(err)
			}
			fmt.Println("  wrote epidemic.vtk (open in ParaView for the space-time cube)")
		}
	}
}

func writeFile(name string, fn func(*os.File) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
