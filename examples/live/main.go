// Live replays a synthetic event stream through stkde.NewStream and
// watches the hotspot drift across the sliding window — the dashboard /
// now-casting workflow the streaming estimator exists for.
//
// A 45-day density window slides over 180 days of events whose hotspot
// center migrates across the region. Each simulated day folds that day's
// events into the window (O(Hs²·Ht) per event, no recompute) and advances
// the window by one voxel layer (an O(1) ring rotation that zeroes only
// the freed layer and expires events left behind). Every 15 days the
// window's peak voxel is reported, tracking the migration in near real
// time.
//
// Run with: go run ./examples/live
package main

import (
	"fmt"
	"log"
	"math"

	"repro/stkde"
)

// lcg is a tiny deterministic generator so the replay is reproducible.
type lcg uint64

func (r *lcg) float() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>33) / float64(1<<31)
}

func main() {
	const (
		days       = 180
		window     = 45 // window length in days (= temporal voxel layers)
		eventsDay  = 60 // mean daily case load
		regionSize = 3000.0
	)
	spec, err := stkde.NewSpec(
		stkde.Domain{GX: regionSize, GY: regionSize, GT: window},
		50, 1, // 50 m spatial voxels, 1-day temporal voxels
		200, 5) // 200 m / 5-day bandwidths
	if err != nil {
		log.Fatal(err)
	}

	stream, err := stkde.NewStream(spec, stkde.StreamConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Release()

	// The outbreak center migrates diagonally across the region with a
	// slow sinusoidal wobble — the drift the window should track.
	center := func(day int) (x, y float64) {
		f := float64(day) / days
		x = regionSize * (0.15 + 0.7*f)
		y = regionSize * (0.5 + 0.3*math.Sin(2*math.Pi*f))
		return
	}

	rng := lcg(42)
	fmt.Printf("%6s  %-14s  %6s  %-22s  %-22s\n",
		"day", "window", "live", "true center", "window hotspot")
	for day := 0; day < days; day++ {
		cx, cy := center(day)
		batch := make([]stkde.Point, 0, eventsDay)
		for i := 0; i < eventsDay; i++ {
			// Box-Muller around the day's center, clamped to the region.
			u, v := rng.float(), rng.float()
			r := 250 * math.Sqrt(-2*math.Log(1-u+1e-12))
			batch = append(batch, stkde.Point{
				X: clamp(cx+r*math.Cos(2*math.Pi*v), 0, regionSize-1),
				Y: clamp(cy+r*math.Sin(2*math.Pi*v), 0, regionSize-1),
				T: float64(day) + rng.float(),
			})
		}
		stream.Add(batch...)
		stream.AdvanceTo(float64(day)) // slide once the window fills

		if day%15 == 14 {
			snap, err := stream.Snapshot(nil)
			if err != nil {
				log.Fatal(err)
			}
			_, X, Y, T := snap.Max()
			t0, t1 := stream.Window()
			fmt.Printf("%6d  [%4.0f, %4.0f)  %6d  (%6.0f, %6.0f)        (%6.0f, %6.0f) @ t=%.0f\n",
				day, t0, t1, stream.N(), cx, cy,
				spec.CenterX(X), spec.CenterY(Y), snap.Spec.CenterT(T))
		}
	}

	st := stream.Stats()
	fmt.Printf("\n%d events applied across %d window advances (%d expired, %d compactions, residual bound %.1e)\n",
		st.Ops, st.Advances, st.Expired, st.Compactions, st.ResidualBound)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
