// Wildlife contrasts the two extreme regimes of the paper's evaluation
// using bird-observation workloads:
//
//   - a Flu-style instance (sparse points, huge grid) where memory
//     initialization dominates and replicating the domain hurts — and can
//     exhaust a memory budget outright (Figure 8's OOM entries), and
//   - an eBird-style instance (dense points, modest grid) where compute
//     dominates and replication-based strategies shine.
//
// Run with: go run ./examples/wildlife
package main

import (
	"errors"
	"fmt"
	"log"
	"runtime"

	"repro/stkde"
	"repro/synth"
)

func main() {
	threads := runtime.GOMAXPROCS(0)

	fmt.Println("=== Flu-style: sparse global surveillance (init-bound) ===")
	fluDomain := stkde.Domain{GX: 320, GY: 220, GT: 700}
	flu := synth.SparseGlobal{}.Generate(8000, fluDomain, 2001)
	fluSpec, err := stkde.NewSpec(fluDomain, 1, 1, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d observations on a %dx%dx%d grid (%.0f MB)\n",
		len(flu), fluSpec.Gx, fluSpec.Gy, fluSpec.Gt, float64(fluSpec.Bytes())/1e6)

	res, err := stkde.Estimate(stkde.AlgPBSYM, flu, fluSpec, stkde.Options{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	initFrac := res.Phases.Init.Seconds() / res.Phases.Total().Seconds()
	fmt.Printf("PB-SYM: %v total, %.0f%% spent initializing memory (Figure 7's tall blue bars)\n",
		res.Phases.Total(), initFrac*100)

	// Domain replication multiplies exactly that dominant cost — and with
	// a budget sized like the paper's 128 GB machine (relative to the
	// grid), it simply does not fit.
	budget := stkde.NewBudget(3 * fluSpec.Bytes())
	_, err = stkde.Estimate(stkde.AlgPBSYMDR, flu, fluSpec, stkde.Options{
		Threads: threads, Budget: budget,
	})
	if errors.Is(err, stkde.ErrMemoryBudget) {
		fmt.Printf("PB-SYM-DR with %d threads: OOM under a 3-grid budget (as in Figures 8/14)\n", threads)
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("PB-SYM-DR fit (increase threads to reproduce the paper's OOM)")
	}

	dd, err := stkde.Estimate(stkde.AlgPBSYMDD, flu, fluSpec, stkde.Options{
		Threads: threads, Decomp: [3]int{8, 8, 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PB-SYM-DD keeps one grid: %v (speedup limited by init, like the paper's ~3x)\n\n",
		dd.Phases.Total())

	fmt.Println("=== eBird-style: dense hotspots (compute-bound) ===")
	birdDomain := stkde.Domain{GX: 360, GY: 180, GT: 365}
	birds := synth.Hotspot{}.Generate(150000, birdDomain, 2016)
	birdSpec, err := stkde.NewSpec(birdDomain, 1, 1, 6, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d observations on a %dx%dx%d grid (%.0f MB)\n",
		len(birds), birdSpec.Gx, birdSpec.Gy, birdSpec.Gt, float64(birdSpec.Bytes())/1e6)

	seq, err := stkde.Estimate(stkde.AlgPBSYM, birds, birdSpec, stkde.Options{Threads: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PB-SYM sequential: %v (%.0f%% compute)\n", seq.Phases.Total(),
		100*seq.Phases.Compute.Seconds()/seq.Phases.Total().Seconds())

	for _, alg := range []string{stkde.AlgPBSYMDR, stkde.AlgPBSYMPDSCHEDREP} {
		res, err := stkde.Estimate(alg, birds, birdSpec, stkde.Options{
			Threads: threads, Decomp: [3]int{16, 16, 16},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %v, speedup %.2fx\n", alg, res.Phases.Total(),
			seq.Phases.Total().Seconds()/res.Phases.Total().Seconds())
	}
}
