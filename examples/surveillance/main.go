// Surveillance demonstrates the operational workflow the paper's
// introduction motivates: a disease surveillance system that receives new
// case reports every day and needs the density map refreshed in near real
// time.
//
// It exercises three extensions built on the paper's machinery:
//
//   - the streaming Accumulator (incremental adds, sliding-window retires),
//   - exact point Queries ("what is the risk at this clinic right now?"),
//   - hot-region extraction via thresholding, and
//   - a simulated distributed-memory run (the paper's future-work item).
//
// Run with: go run ./examples/surveillance
package main

import (
	"fmt"
	"log"

	"repro/stkde"
	"repro/synth"
)

func main() {
	domain := stkde.Domain{GX: 8000, GY: 6000, GT: 365}
	spec, err := stkde.NewSpec(domain, 100, 1, 600, 10)
	if err != nil {
		log.Fatal(err)
	}

	// A year of case reports, grouped by day.
	cases := synth.Epidemic{Clusters: 12, Waves: 2}.Generate(20000, domain, 99)
	byDay := make([][]stkde.Point, int(domain.GT))
	for _, c := range cases {
		d := int(c.T)
		byDay[d] = append(byDay[d], c)
	}

	acc, err := stkde.NewAccumulator(spec, stkde.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Stream the first 90 days with a 60-day sliding window: each day the
	// new reports are added and reports older than the window retire.
	const window = 60
	for day := 0; day < 90; day++ {
		acc.Add(byDay[day]...)
		if old := day - window; old >= 0 {
			acc.Remove(byDay[old]...)
		}
	}
	fmt.Printf("after 90 days: %d active cases in the %d-day window\n", acc.N(), window)

	snap, err := acc.Snapshot(nil)
	if err != nil {
		log.Fatal(err)
	}
	v, X, Y, T := snap.Max()
	fmt.Printf("current hotspot: (%.0f m, %.0f m) around day %.0f (density %.3g)\n",
		spec.CenterX(X), spec.CenterY(Y), spec.CenterT(T), v)

	// Hot-region alerting: voxels above 40%% of the peak.
	hot := snap.Threshold(v * 0.4)
	fmt.Printf("alert regions at 40%% of peak: %d voxel runs\n", len(hot))

	// The epidemic curve (spatially integrated density per day).
	profile := snap.TemporalProfile()
	peakDay, peakVal := 0, 0.0
	for d, p := range profile {
		if p > peakVal {
			peakDay, peakVal = d, p
		}
	}
	fmt.Printf("epidemic curve peaks on day %d\n", peakDay)

	// Point queries: exact densities at three clinic locations, straight
	// from the raw events (no grid needed).
	var active []stkde.Point
	for day := max(0, 90-window); day < 90; day++ {
		active = append(active, byDay[day]...)
	}
	q := stkde.NewQuery(active, spec, stkde.Options{})
	clinics := []stkde.Point{
		{X: 2000, Y: 1500, T: 89},
		{X: 4000, Y: 3000, T: 89},
		{X: 7500, Y: 5500, T: 89},
	}
	for i, c := range clinics {
		fmt.Printf("clinic %d risk today: %.3g\n", i+1, q.At(c.X, c.Y, c.T))
	}

	// Finally, the same full-year estimate on a simulated 4-node
	// distributed-memory cluster.
	res, err := stkde.EstimateDistributed(cases, spec, stkde.DistOptions{Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("distributed run: %d ranks, %d messages, %.1f MB scattered, %.1f MB gathered, imbalance %.2f\n",
		st.Ranks, st.Messages, float64(st.ScatterBytes)/1e6, float64(st.GatherBytes)/1e6, st.Imbalance)
}
