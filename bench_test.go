// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section 6) as Go testing.B benchmarks, one per artifact, on
// scaled Table 2 instances. Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the quantity its figure plots as a custom metric
// (speedup, overhead factor, relative critical path, ...). For full tables
// over all 21 instances use cmd/stkdebench instead; benchmarks here use a
// small instance subset so the suite completes in minutes.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/stkde"
	"repro/synth"
)

// benchScale keeps grids a few MB so the whole suite runs in minutes.
const benchScale = 0.10

// benchInstances is the representative subset: one instance per regime.
//   - Dengue_Hr-VHb: clustered, large bandwidth (DD/PD shine)
//   - PollenUS_Hr-Mb: many points, compute-bound (scheduling matters)
//   - Flu_Mr-Lb: sparse, init-bound (replication hurts)
//   - eBird_Lr-Hb: dense, compute-heavy (replication wins)
var benchInstances = []string{
	"Dengue_Hr-VHb", "PollenUS_Hr-Mb", "Flu_Mr-Lb", "eBird_Lr-Hb",
}

type fixture struct {
	pts  []grid.Point
	spec grid.Spec
}

var (
	fixMu  sync.Mutex
	fixMap = map[string]*fixture{}
)

func load(b *testing.B, name string) *fixture {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixMap[name]; ok {
		return f
	}
	inst, ok := data.InstanceByName(name)
	if !ok {
		b.Fatalf("unknown instance %s", name)
	}
	s, err := inst.Scaled(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{pts: s.Points(), spec: s.Spec}
	fixMap[name] = f
	return f
}

func run(b *testing.B, alg string, f *fixture, opt core.Options) *core.Result {
	b.Helper()
	res, err := core.Estimate(alg, f.pts, f.spec, opt)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func maxThreads() int {
	p := runtime.GOMAXPROCS(0)
	if p > 16 {
		p = 16
	}
	return p
}

// seqTime measures the sequential PB-SYM baseline once per instance.
var (
	seqMu   sync.Mutex
	seqBase = map[string]float64{}
)

func seqBaseline(b *testing.B, name string, f *fixture) float64 {
	seqMu.Lock()
	defer seqMu.Unlock()
	if t, ok := seqBase[name]; ok {
		return t
	}
	res := run(b, core.AlgPBSYM, f, core.Options{Threads: 1})
	t := res.Phases.Total().Seconds()
	res.Grid.Release()
	seqBase[name] = t
	return t
}

// BenchmarkTable2Catalog regenerates Table 2 (instance creation and
// deterministic point generation).
func BenchmarkTable2Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, inst := range synth.Catalog() {
			s, err := inst.Scaled(0.05)
			if err != nil {
				b.Fatal(err)
			}
			pts := s.Points()
			if len(pts) == 0 {
				b.Fatal("no points")
			}
		}
	}
}

// BenchmarkTable3Sequential regenerates Table 3: the sequential algorithm
// ladder VB -> VB-DEC -> PB -> PB-DISK -> PB-BAR -> PB-SYM. VB runs only on
// the smallest instance (its cost is quadratic, exactly why the paper
// leaves blanks).
func BenchmarkTable3Sequential(b *testing.B) {
	for _, name := range []string{"Dengue_Lr-Lb", "PollenUS_Lr-Lb"} {
		f := load(b, name)
		vbOps := float64(f.spec.Voxels()) * float64(len(f.pts))
		for _, alg := range core.SequentialAlgorithms() {
			if (alg == core.AlgVB || alg == core.AlgVBDEC) && vbOps > 5e8 {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", name, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := run(b, alg, f, core.Options{Threads: 1})
					res.Grid.Release()
				}
			})
		}
	}
}

// BenchmarkFig7Breakdown regenerates Figure 7: the init/compute breakdown
// of PB-SYM, reported as the init fraction metric.
func BenchmarkFig7Breakdown(b *testing.B) {
	for _, name := range benchInstances {
		f := load(b, name)
		b.Run(name, func(b *testing.B) {
			var initS, totalS float64
			for i := 0; i < b.N; i++ {
				res := run(b, core.AlgPBSYM, f, core.Options{Threads: 1})
				initS += res.Phases.Init.Seconds()
				totalS += res.Phases.Total().Seconds()
				res.Grid.Release()
			}
			if totalS > 0 {
				b.ReportMetric(initS/totalS, "init_frac")
			}
		})
	}
}

// BenchmarkFig8DR regenerates Figure 8: PB-SYM-DR speedup per thread count.
func BenchmarkFig8DR(b *testing.B) {
	threads := []int{1, 2, 4}
	if p := maxThreads(); p >= 8 {
		threads = append(threads, 8)
	}
	for _, name := range benchInstances {
		f := load(b, name)
		for _, p := range threads {
			b.Run(fmt.Sprintf("%s/threads=%d", name, p), func(b *testing.B) {
				base := seqBaseline(b, name, f)
				var total float64
				for i := 0; i < b.N; i++ {
					res := run(b, core.AlgPBSYMDR, f, core.Options{Threads: p})
					total += res.Phases.Total().Seconds()
					res.Grid.Release()
				}
				b.ReportMetric(base/(total/float64(b.N)), "speedup")
			})
		}
	}
}

// BenchmarkFig9DDOverhead regenerates Figure 9: the single-thread runtime
// of PB-SYM-DD relative to PB-SYM, per decomposition.
func BenchmarkFig9DDOverhead(b *testing.B) {
	for _, name := range benchInstances {
		f := load(b, name)
		for _, k := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/decomp=%d", name, k), func(b *testing.B) {
				base := seqBaseline(b, name, f)
				var total float64
				for i := 0; i < b.N; i++ {
					res := run(b, core.AlgPBSYMDD, f,
						core.Options{Threads: 1, Decomp: [3]int{k, k, k}})
					total += res.Phases.Total().Seconds()
					res.Grid.Release()
				}
				b.ReportMetric((total/float64(b.N))/base, "overhead_x")
			})
		}
	}
}

// parallelSweep is the shared shape of Figures 10, 11, 13 and 14.
func parallelSweep(b *testing.B, alg string) {
	p := maxThreads()
	for _, name := range benchInstances {
		f := load(b, name)
		for _, k := range []int{2, 8, 32} {
			b.Run(fmt.Sprintf("%s/decomp=%d", name, k), func(b *testing.B) {
				base := seqBaseline(b, name, f)
				var total float64
				for i := 0; i < b.N; i++ {
					res := run(b, alg, f, core.Options{Threads: p, Decomp: [3]int{k, k, k}})
					total += res.Phases.Total().Seconds()
					res.Grid.Release()
				}
				b.ReportMetric(base/(total/float64(b.N)), "speedup")
			})
		}
	}
}

// BenchmarkFig10DD regenerates Figure 10: PB-SYM-DD speedup per decomposition.
func BenchmarkFig10DD(b *testing.B) { parallelSweep(b, core.AlgPBSYMDD) }

// BenchmarkFig11PD regenerates Figure 11: PB-SYM-PD speedup per decomposition.
func BenchmarkFig11PD(b *testing.B) { parallelSweep(b, core.AlgPBSYMPD) }

// BenchmarkFig13PDSched regenerates Figure 13: PB-SYM-PD-SCHED speedup.
func BenchmarkFig13PDSched(b *testing.B) { parallelSweep(b, core.AlgPBSYMPDSCHED) }

// BenchmarkFig14PDRep regenerates Figure 14: PB-SYM-PD-REP speedup.
func BenchmarkFig14PDRep(b *testing.B) { parallelSweep(b, core.AlgPBSYMPDREP) }

// BenchmarkFig12CriticalPath regenerates Figure 12: the relative critical
// path of the checkerboard (PD) versus load-aware (PD-SCHED) colorings.
func BenchmarkFig12CriticalPath(b *testing.B) {
	for _, name := range benchInstances {
		f := load(b, name)
		for _, loadAware := range []bool{false, true} {
			label := "pd"
			if loadAware {
				label = "pd-sched"
			}
			b.Run(fmt.Sprintf("%s/%s", name, label), func(b *testing.B) {
				var rel float64
				for i := 0; i < b.N; i++ {
					st, err := core.AnalyzePD(f.pts, f.spec,
						core.Options{Threads: maxThreads(), Decomp: [3]int{64, 64, 64}}, loadAware)
					if err != nil {
						b.Fatal(err)
					}
					rel = st.CriticalPathRel
				}
				b.ReportMetric(rel, "cp_rel")
			})
		}
	}
}

// BenchmarkFig15Best regenerates Figure 15: the best parallel strategy per
// instance (speedup metric of the winner).
func BenchmarkFig15Best(b *testing.B) {
	p := maxThreads()
	strategies := []string{
		core.AlgPBSYMDR, core.AlgPBSYMDD, core.AlgPBSYMPD,
		core.AlgPBSYMPDSCHED, core.AlgPBSYMPDSCHREP,
	}
	for _, name := range benchInstances {
		f := load(b, name)
		b.Run(name, func(b *testing.B) {
			base := seqBaseline(b, name, f)
			best := 0.0
			for i := 0; i < b.N; i++ {
				for _, alg := range strategies {
					res := run(b, alg, f, core.Options{Threads: p, Decomp: [3]int{8, 8, 8}})
					if sp := base / res.Phases.Total().Seconds(); sp > best {
						best = sp
					}
					res.Grid.Release()
				}
			}
			b.ReportMetric(best, "best_speedup")
		})
	}
}

// BenchmarkAblationSeparability isolates the paper's central sequential
// claim (Table 3's speedup column): exploiting the kernel's grid-aligned
// symmetry (PB-SYM) versus evaluating both kernels per voxel (PB).
func BenchmarkAblationSeparability(b *testing.B) {
	f := load(b, "PollenUS_Hr-Mb")
	for _, alg := range []string{core.AlgPB, core.AlgPBDISK, core.AlgPBBAR, core.AlgPBSYM} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := run(b, alg, f, core.Options{Threads: 1})
				res.Grid.Release()
			}
		})
	}
}

// BenchmarkAblationColoringOrder isolates the effect of the load-aware
// vertex order in the greedy coloring (PD-SCHED's key idea) on the
// critical path of a clustered instance.
func BenchmarkAblationColoringOrder(b *testing.B) {
	f := load(b, "Dengue_Hr-VHb")
	for _, loadAware := range []bool{false, true} {
		label := "natural"
		if loadAware {
			label = "load-aware"
		}
		b.Run(label, func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				st, err := core.AnalyzePD(f.pts, f.spec,
					core.Options{Threads: maxThreads(), Decomp: [3]int{16, 16, 16}}, loadAware)
				if err != nil {
					b.Fatal(err)
				}
				rel = st.CriticalPathRel
			}
			b.ReportMetric(rel, "cp_rel")
		})
	}
}

// BenchmarkAblationAdaptiveBandwidth measures the cost of the adaptive
// bandwidth extension relative to uniform bandwidths.
func BenchmarkAblationAdaptiveBandwidth(b *testing.B) {
	f := load(b, "Dengue_Hr-Hb")
	mid := f.spec.Domain.X0 + f.spec.Domain.GX/2
	for _, adaptive := range []bool{false, true} {
		label := "uniform"
		opt := core.Options{Threads: 1}
		if adaptive {
			label = "adaptive"
			opt.AdaptiveBandwidth = func(p grid.Point) float64 {
				if p.X < mid {
					return 1.3
				}
				return 0.8
			}
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := run(b, core.AlgPBSYM, f, opt)
				res.Grid.Release()
			}
		})
	}
}

// BenchmarkModelPrediction measures the parametric model itself (it must
// be cheap enough to run before every estimation).
func BenchmarkModelPrediction(b *testing.B) {
	f := load(b, "PollenUS_Hr-Mb")
	m := model.DefaultMachine(maxThreads(), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := model.NewWorkload(f.pts, f.spec, [3]int{8, 8, 8})
		if _, preds := model.Pick(w, m); len(preds) == 0 {
			b.Fatal("no predictions")
		}
	}
}

// BenchmarkHarness measures a full harness experiment (fig7 on two
// instances), ensuring the reporting layer adds negligible cost.
func BenchmarkHarness(b *testing.B) {
	cfg := bench.Config{
		Scale:     0.05,
		Instances: []string{"Dengue_Lr-Lb", "Flu_Lr-Lb"},
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run("fig7", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI exercises the stkde facade end to end, as a user
// would call it.
func BenchmarkPublicAPI(b *testing.B) {
	domain := stkde.Domain{GX: 100, GY: 100, GT: 50}
	pts := synth.Epidemic{}.Generate(20000, domain, 5)
	spec, err := stkde.NewSpec(domain, 1, 1, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := stkde.Estimate(stkde.AlgPBSYMPDSCHED, pts, spec, stkde.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res.Grid.Release()
	}
}
